package core

import (
	"encoding/binary"
	"errors"
	"math/bits"
	"sort"

	"clockrsm/internal/consensus"
	"clockrsm/internal/msg"
	"clockrsm/internal/storage"
	"clockrsm/internal/types"
)

// reconfigInit tracks an in-progress RECONFIGURE initiated locally
// (Alg. 3 lines 1-6).
type reconfigInit struct {
	epoch   types.Epoch
	cts     types.Timestamp
	cfg     []types.ReplicaID
	okMask  uint64
	cmds    map[types.Timestamp]types.Command
	propose bool
	// Best snapshot shipped with a SUSPENDOK: a responder that compacted
	// part of the (cts, ∞) range cannot return those commands, so the
	// initiator restores the snapshot before applying its own decision.
	snap   []byte
	snapTS types.Timestamp
}

// decision is a decoded consensus outcome (Alg. 3 line 11).
type decision struct {
	epoch types.Epoch
	cfg   []types.ReplicaID
	ts    types.Timestamp
	cmds  []msg.TimestampedCommand
	// snapTS is the newest checkpoint timestamp among the SUSPENDOK
	// responders (zero if none shipped a snapshot). The decision's cmds
	// are complete only above snapTS: a responder whose checkpoint
	// compacted part of (ts, snapTS] contributed a snapshot instead of
	// those commands, and the snapshot travels only to the initiator.
	// Every replica applying the decision with a commit frontier below
	// snapTS must therefore catch up via state transfer — the transfer
	// responders re-ship checkpoint + tail — or it would silently skip
	// the compacted commands and diverge.
	snapTS types.Timestamp
}

// stateTransfer tracks an in-progress STATETRANSFER (Alg. 3 lines
// 25-28) fetching committed commands this replica is missing.
type stateTransfer struct {
	epoch   types.Epoch
	dec     *decision
	from    types.Timestamp
	to      types.Timestamp
	okMask  uint64
	cmds    map[types.Timestamp]types.Command
	applied bool
	// Best snapshot received: replaces replaying commands ≤ snapTS when
	// a responder compacted part of the requested range (Section V-B).
	snap   []byte
	snapTS types.Timestamp
}

// Reconfigure triggers the reconfiguration protocol with a proposed new
// configuration (Alg. 3 RECONFIGURE). It is invoked by the failure
// detector on suspicion, or explicitly (e.g. by a recovered replica
// rejoining via Rejoin).
func (r *Replica) Reconfigure(confignew []types.ReplicaID) {
	e := r.epoch + 1
	if r.rc != nil && r.rc.epoch >= e {
		return // already reconfiguring toward this epoch or later
	}
	cts := r.env.Log().LastCommitTS()
	r.suspended = true
	r.rc = &reconfigInit{
		epoch: e,
		cts:   cts,
		cfg:   append([]types.ReplicaID(nil), confignew...),
		cmds:  make(map[types.Timestamp]types.Command),
	}
	// Our own SUSPENDOK contribution.
	r.rc.okMask |= 1 << uint(r.env.ID())
	for _, tc := range r.env.Log().CommandsAfter(cts) {
		r.rc.cmds[tc.TS] = tc.Cmd
	}
	m := &msg.Suspend{Epoch: e, CTS: cts}
	for _, k := range r.spec {
		if k != r.env.ID() {
			r.env.Send(k, m)
		}
	}
	r.maybePropose()
}

// Rejoin is the entry point for a recovered replica: it proposes a
// configuration consisting of the current one plus itself. A recovered
// replica may hold an arbitrarily stale view of the epoch (possibly
// believing it is still configured), so Rejoin always forces a
// reconfiguration to a strictly newer epoch; each attempt either
// succeeds or teaches the replica one newer epoch (via the Learn reply
// to its stale SUSPEND), and Rejoin self-retries until a reconfiguration
// newer than its recovery point has put it back in the configuration.
func (r *Replica) Rejoin() {
	if r.rejoining && r.epoch >= r.rejoinTarget && r.inConfig[r.env.ID()] && !r.suspended {
		r.rejoining = false
		return
	}
	if !r.rejoining {
		r.rejoining = true
		r.rejoinTarget = r.epoch + 1
	}
	retry := r.opts.ConsensusRetry
	if retry <= 0 {
		retry = consensus.DefaultRetryTimeout
	}
	r.env.After(2*retry, r.Rejoin)
	cfg := append([]types.ReplicaID(nil), r.config...)
	found := false
	for _, k := range cfg {
		if k == r.env.ID() {
			found = true
		}
	}
	if !found {
		cfg = append(cfg, r.env.ID())
		sort.Slice(cfg, func(i, j int) bool { return cfg[i] < cfg[j] })
	}
	r.rc = nil // a rejoin supersedes any stale attempt
	r.Reconfigure(cfg)
}

// onSuspend handles 〈SUSPEND e, cts〉 (Alg. 3 lines 7-10): freeze the
// log and return every logged command newer than cts.
func (r *Replica) onSuspend(from types.ReplicaID, m *msg.Suspend) {
	if m.Epoch <= r.epoch {
		// Stale attempt: the sender lags (e.g. it recovered after missing
		// reconfigurations). Teach it every decision from that epoch
		// forward, so a replica that missed many reconfigurations catches
		// up in one round instead of one epoch per retry.
		for e := uint64(m.Epoch); ; e++ {
			v, ok := r.px.Decided(e)
			if !ok {
				break
			}
			r.env.Send(from, &msg.Learn{Instance: e, Value: v})
		}
		return
	}
	r.suspended = true
	ok := &msg.SuspendOK{Epoch: m.Epoch}
	low := m.CTS
	// A checkpoint newer than the requested baseline swallowed part of
	// the range; the command list alone would silently omit those
	// commands, so ship the snapshot covering them (Section V-B), as the
	// state-transfer reply does.
	if cpr, okc := r.env.Log().(storage.Checkpointer); okc {
		if cp, okc := cpr.LastCheckpoint(); okc && m.CTS.Less(cp.TS) {
			ok.HasSnap = true
			ok.SnapTS = cp.TS
			ok.Snap = cp.State
			low = cp.TS
		}
	}
	ok.Cmds = r.env.Log().CommandsAfter(low)
	// The reply asserts our log's contents: the covering fsync first.
	r.syncBarrier()
	r.env.Send(from, ok)
}

// onSuspendOK collects SUSPENDOK replies (Alg. 3 line 5); once a
// majority of Spec answered, the union of commands is proposed to
// consensus (line 6).
func (r *Replica) onSuspendOK(from types.ReplicaID, m *msg.SuspendOK) {
	if r.rc == nil || m.Epoch != r.rc.epoch || r.rc.propose {
		return
	}
	r.rc.okMask |= 1 << uint(from)
	for _, tc := range m.Cmds {
		r.rc.cmds[tc.TS] = tc.Cmd
	}
	if m.HasSnap && r.rc.snapTS.Less(m.SnapTS) {
		r.rc.snap = m.Snap
		r.rc.snapTS = m.SnapTS
	}
	r.maybePropose()
}

// maybePropose starts consensus once a majority of Spec is suspended.
func (r *Replica) maybePropose() {
	if r.rc == nil || r.rc.propose {
		return
	}
	if bits.OnesCount64(r.rc.okMask) < types.Majority(len(r.spec)) {
		return
	}
	r.rc.propose = true
	val := encodeProposal(r.rc.cfg, r.rc.cts, r.rc.snapTS, sortedCmds(r.rc.cmds))
	r.px.Propose(uint64(r.rc.epoch), val)
}

// onDecide is the DECIDE upcall from the consensus primitive (Alg. 3
// lines 11-24). Decisions apply strictly in epoch order; replicas that
// lag first fetch missing committed commands via STATETRANSFER.
func (r *Replica) onDecide(instance uint64, value []byte) {
	d, err := decodeProposal(value)
	if err != nil {
		return // cannot happen with our own encoder; ignore corrupt value
	}
	d.epoch = types.Epoch(instance)
	r.stashed[d.epoch] = d
	r.drainDecisions()
}

// drainDecisions applies every stashed decision that is next in epoch
// order.
func (r *Replica) drainDecisions() {
	if r.st != nil && !r.st.applied {
		return // a state transfer for the current decision is in flight
	}
	for {
		d, ok := r.stashed[r.epoch+1]
		if !ok {
			return
		}
		if !r.beginApply(d) {
			return // waiting for state transfer
		}
	}
}

// beginApply starts applying decision d, returning false if a state
// transfer must complete first.
func (r *Replica) beginApply(d *decision) bool {
	r.suspended = true
	// If this replica initiated the reconfiguration and a SUSPENDOK
	// shipped a snapshot ahead of our commit frontier, restore it before
	// measuring the lag: the responders' checkpoints swallowed commands
	// the decision's list cannot carry, and the snapshot covers them.
	if r.rc != nil && r.rc.epoch == d.epoch && r.rc.snap != nil && r.env.Log().LastCommitTS().Less(r.rc.snapTS) {
		if restored, err := r.app.TryRestore(r.rc.snap); err == nil && restored {
			if cpr, ok := r.env.Log().(storage.Checkpointer); ok {
				cpr.WriteCheckpoint(storage.Checkpoint{TS: r.rc.snapTS, State: r.rc.snap})
			}
			r.committed++
			r.snapRestores.Add(1)
		}
	}
	cts := r.env.Log().LastCommitTS()
	// The decision's command list is complete only above d.snapTS (see
	// decision.snapTS): a frontier below that must be repaired by state
	// transfer even when it already covers the decision baseline d.ts,
	// or the commands a responder's checkpoint compacted would be
	// skipped here and executed elsewhere — diverging histories.
	need := d.ts
	if need.Less(d.snapTS) {
		need = d.snapTS
	}
	if cts.Less(need) {
		// This replica lags behind the decision baseline: fetch committed
		// commands in (cts, need] from a majority (Alg. 3 lines 13-14).
		r.st = &stateTransfer{
			epoch: d.epoch,
			dec:   d,
			from:  cts,
			to:    need,
			cmds:  make(map[types.Timestamp]types.Command),
		}
		// Our own log answers immediately.
		r.st.okMask |= 1 << uint(r.env.ID())
		for _, tc := range r.env.Log().CommandsBetween(cts, need) {
			r.st.cmds[tc.TS] = tc.Cmd
		}
		req := &msg.RetrieveCmds{From: cts, To: need}
		for _, k := range r.spec {
			if k != r.env.ID() {
				r.env.Send(k, req)
			}
		}
		if bits.OnesCount64(r.st.okMask) >= types.Majority(len(r.spec)) {
			r.finishApply(d, sortedCmds(r.st.cmds))
			return true
		}
		return false
	}
	r.finishApply(d, nil)
	return true
}

// catchupSnapshotThreshold is the tail length above which a
// state-transfer responder takes an on-demand checkpoint so catch-up
// ships snapshot + short tail instead of a long command replay. A
// variable so tests can lower it.
var catchupSnapshotThreshold = 256

// onRetrieveCmds serves a state-transfer request (Alg. 3 lines 29-31).
// Served regardless of suspension or epoch: logs are stable. If part of
// the requested range was compacted into a checkpoint, the snapshot is
// shipped along with the commands above it; if the requester is far
// behind and no checkpoint covers the gap yet, one is taken on demand,
// so a lagging or restarted replica always catches up via checkpoint +
// tail rather than replaying history since genesis.
func (r *Replica) onRetrieveCmds(from types.ReplicaID, m *msg.RetrieveCmds) {
	if r.shouldSnapshotFor(m.From) {
		r.checkpointNow()
	}
	reply := &msg.RetrieveReply{Seq: uint64(r.epoch)}
	low := m.From
	if cpr, ok := r.env.Log().(storage.Checkpointer); ok {
		if cp, ok := cpr.LastCheckpoint(); ok && m.From.Less(cp.TS) {
			reply.HasSnap = true
			reply.SnapTS = cp.TS
			reply.Snap = cp.State
			if m.To.Less(cp.TS) {
				low = m.To
			} else {
				low = cp.TS
			}
		}
	}
	reply.Cmds = r.env.Log().CommandsBetween(low, m.To)
	// The reply asserts our log's contents: the covering fsync first.
	r.syncBarrier()
	r.env.Send(from, reply)
}

// shouldSnapshotFor reports whether serving a transfer from baseline
// `from` warrants an on-demand checkpoint: checkpointing is enabled,
// the application supports snapshots, no existing checkpoint already
// covers part of the gap, and the committed tail above the baseline is
// long. Gated on CheckpointEvery so a cluster that never opted into
// checkpointing keeps pure command-replay catch-up — every replica
// executes every command individually — instead of being silently
// switched to snapshot semantics by one slow transfer.
func (r *Replica) shouldSnapshotFor(from types.Timestamp) bool {
	if r.opts.CheckpointEvery <= 0 {
		return false
	}
	cpr, ok := r.env.Log().(storage.Checkpointer)
	if !ok {
		return false
	}
	if cp, ok := cpr.LastCheckpoint(); ok && from.Less(cp.TS) {
		return false // existing checkpoint already covers the gap
	}
	if !from.Less(r.lastCommitted) {
		return false // nothing committed beyond the requester
	}
	return len(r.env.Log().CommandsBetween(from, r.lastCommitted)) >= catchupSnapshotThreshold
}

// checkpointNow takes an immediate snapshot at the commit frontier and
// compacts the log through it. Best-effort, like maybeCheckpoint.
func (r *Replica) checkpointNow() {
	cpr, ok := r.env.Log().(storage.Checkpointer)
	if !ok {
		return
	}
	state, ok := r.app.TrySnapshot()
	if !ok {
		return
	}
	if err := cpr.WriteCheckpoint(storage.Checkpoint{TS: r.lastCommitted, State: state}); err != nil {
		return
	}
	r.sinceCheckpoint = 0
	r.checkpoints++
}

// onRetrieveReply collects state-transfer responses until a majority of
// Spec answered.
func (r *Replica) onRetrieveReply(from types.ReplicaID, m *msg.RetrieveReply) {
	st := r.st
	if st == nil || st.applied {
		return
	}
	st.okMask |= 1 << uint(from)
	for _, tc := range m.Cmds {
		// Only the requested range matters; a stale reply from an older
		// transfer could carry other timestamps.
		if st.from.Less(tc.TS) && tc.TS.LessEq(st.to) {
			st.cmds[tc.TS] = tc.Cmd
		}
	}
	if m.HasSnap && st.snapTS.Less(m.SnapTS) {
		st.snap = m.Snap
		st.snapTS = m.SnapTS
	}
	if bits.OnesCount64(st.okMask) >= types.Majority(len(r.spec)) {
		st.applied = true
		// Restore the newest received snapshot before applying commands;
		// it covers every command ≤ snapTS that some responder compacted.
		if st.snap != nil && r.env.Log().LastCommitTS().Less(st.snapTS) {
			if restored, err := r.app.TryRestore(st.snap); err == nil && restored {
				if cpr, ok := r.env.Log().(storage.Checkpointer); ok {
					cpr.WriteCheckpoint(storage.Checkpoint{TS: st.snapTS, State: st.snap})
				}
				r.committed++
				r.snapRestores.Add(1)
			}
		}
		r.finishApply(st.dec, sortedCmds(st.cmds))
		r.drainDecisions()
	}
}

// finishApply installs decision d (Alg. 3 lines 15-24): discard
// uncommitted PREPAREs newer than the baseline, execute every decided
// command not yet executed in timestamp order, install the new epoch and
// configuration, and resume.
func (r *Replica) finishApply(d *decision, transferred []msg.TimestampedCommand) {
	// Flush any output coalesced in the current batch turn before the
	// epoch changes: the buffered messages belong to the old epoch and
	// configuration.
	r.flushOut()
	lg := r.env.Log()
	// Locally originated commands still pending here are candidates for
	// discard (line 15 prunes their PREPAREs): any of them absent from
	// the decision (and the transferred prefix) was seen by no SUSPENDOK
	// majority, so no replica can ever commit it in any epoch — it is
	// reported dropped below, and the client may safely resubmit.
	var candidates []types.CommandID
	if r.onConfig != nil {
		for i := range r.pending.h {
			if cmd := r.pending.h[i].cmd; cmd.ID.Origin == r.env.ID() {
				candidates = append(candidates, cmd.ID)
			}
		}
	}
	// Line 15: remove uncommitted PREPAREs — all of them, not only those
	// above the baseline. Their commands either appear in `all` below
	// (they could have committed; their PREPAREs are re-appended as they
	// execute) or are lost and reported dropped; clients resubmit. An
	// uncommitted PREPARE below the baseline is stale cross-epoch junk
	// (within one epoch no replica's commit point passes a pending
	// timestamp): left in the log, a later state transfer would serve it
	// and the transferring replica would execute a command no other
	// replica has — diverging histories and double-executing a command
	// already reported dropped.
	lg.RemovePrepares(types.Timestamp{})
	r.pending.Clear()
	clear(r.earlyAcks)

	// Lines 16-20: apply transferred commands (all ≤ d.ts) then decided
	// commands (> d.ts) in timestamp order, skipping anything already
	// executed. Commit marks are prefix-closed in timestamp order, so a
	// single LastCommitTS comparison identifies executed commands.
	all := make([]msg.TimestampedCommand, 0, len(transferred)+len(d.cmds))
	all = append(all, transferred...)
	all = append(all, d.cmds...)
	sort.Slice(all, func(i, j int) bool { return all[i].TS.Less(all[j].TS) })
	var dropped []types.CommandID
	if len(candidates) > 0 {
		decided := make(map[types.CommandID]bool, len(all))
		for _, tc := range all {
			decided[tc.Cmd.ID] = true
		}
		for _, id := range candidates {
			if !decided[id] {
				dropped = append(dropped, id)
			}
		}
	}
	cts := lg.LastCommitTS()
	for _, tc := range all {
		if tc.TS.LessEq(cts) {
			continue
		}
		if !lg.HasPrepare(tc.TS) {
			lg.Append(storage.Entry{Kind: storage.KindPrepare, TS: tc.TS, Cmd: tc.Cmd})
		}
		lg.Append(storage.Entry{Kind: storage.KindCommit, TS: tc.TS})
		cts = tc.TS
		r.committed++
		r.app.Execute(r.env.ID(), tc.TS, tc.Cmd)
	}
	if r.lastCommitted.Less(cts) {
		r.lastCommitted = cts
	}
	// Make the applied commands durable before resuming: the epoch
	// install implicitly asserts them to every peer we speak to next.
	r.syncBarrier()

	// Lines 21-24: install epoch and configuration, resize LatestTV.
	r.epoch = d.epoch
	delete(r.stashed, d.epoch)
	r.config = append(r.config[:0], d.cfg...)
	for k := range r.inConfig {
		delete(r.inConfig, k)
	}
	for _, k := range d.cfg {
		r.inConfig[k] = true
	}
	// Reset LatestTV to the decision baseline: stable order resumes once
	// the new configuration's members are heard from again.
	for k := range r.latestTV {
		r.latestTV[k] = 0
	}
	now := r.env.Clock()
	for _, k := range d.cfg {
		r.latestTV[k] = d.ts.Wall
		r.lastHeard[k] = now
	}
	// The FIFO-integrity counters restart with the epoch: everything the
	// old epoch's streams carried (or lost) is subsumed by this install.
	r.prepSent = 0
	clear(r.prepRecv)
	r.rc = nil
	r.st = nil
	r.suspended = false

	// Replay data messages that arrived tagged with this epoch before it
	// installed: without them this replica would have a permanent gap for
	// commands the rest of the new configuration already acknowledged.
	r.redeliverHeld()

	// Replay commands buffered while suspended; if the decision removed
	// this replica, they cannot replicate from here and count as dropped.
	deferred := r.deferred
	r.deferred = nil
	if r.inConfig[r.env.ID()] {
		for _, cmd := range deferred {
			r.Submit(cmd)
		}
	} else {
		for _, cmd := range deferred {
			dropped = append(dropped, cmd.ID)
		}
	}

	// Held-buffer overflow while this epoch was pending may have opened
	// a gap in our history; force a Rejoin, whose reconfiguration and
	// state transfer (checkpoint + tail) repair it.
	if r.needCatchup {
		r.needCatchup = false
		if !r.rejoining {
			r.env.After(0, r.Rejoin)
		}
	}

	// Notify last, after replies for decided commands went out: the
	// listener observes the installed view and exactly the local commands
	// this reconfiguration lost.
	r.notifyConfig(dropped)

	// The install moved the executed watermark (the transfer may have
	// executed commands, and LatestTV restarted from the decision
	// baseline): wake the read path so parked reads re-evaluate against
	// the new configuration. Inside a batch turn EndBatch notifies.
	if !r.inBatch {
		r.notifyStable()
	}
}

// sortedCmds flattens a timestamp-keyed command map in timestamp order.
func sortedCmds(m map[types.Timestamp]types.Command) []msg.TimestampedCommand {
	out := make([]msg.TimestampedCommand, 0, len(m))
	for ts, cmd := range m {
		out = append(out, msg.TimestampedCommand{TS: ts, Cmd: cmd})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TS.Less(out[j].TS) })
	return out
}

// --- proposal encoding ---

var errBadProposal = errors.New("core: malformed reconfiguration proposal")

// encodeProposal serializes (confignew, cts, cmds) for the consensus
// value (Alg. 3 line 6).
func encodeProposal(cfg []types.ReplicaID, cts, snapTS types.Timestamp, cmds []msg.TimestampedCommand) []byte {
	b := make([]byte, 0, 64)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(cfg)))
	for _, k := range cfg {
		b = binary.LittleEndian.AppendUint32(b, uint32(int32(k)))
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(cts.Wall))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(cts.Node)))
	b = binary.LittleEndian.AppendUint64(b, uint64(snapTS.Wall))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(snapTS.Node)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(cmds)))
	for _, tc := range cmds {
		b = binary.LittleEndian.AppendUint64(b, uint64(tc.TS.Wall))
		b = binary.LittleEndian.AppendUint32(b, uint32(int32(tc.TS.Node)))
		b = binary.LittleEndian.AppendUint32(b, uint32(int32(tc.Cmd.ID.Origin)))
		b = binary.LittleEndian.AppendUint64(b, tc.Cmd.ID.Seq)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(tc.Cmd.Payload)))
		b = append(b, tc.Cmd.Payload...)
	}
	return b
}

// decodeProposal parses an encodeProposal value.
func decodeProposal(b []byte) (*decision, error) {
	d := &decision{}
	u32 := func() (uint32, bool) {
		if len(b) < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(b)
		b = b[4:]
		return v, true
	}
	u64 := func() (uint64, bool) {
		if len(b) < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(b)
		b = b[8:]
		return v, true
	}
	n, ok := u32()
	if !ok {
		return nil, errBadProposal
	}
	for i := uint32(0); i < n; i++ {
		k, ok := u32()
		if !ok {
			return nil, errBadProposal
		}
		d.cfg = append(d.cfg, types.ReplicaID(int32(k)))
	}
	wall, ok1 := u64()
	node, ok2 := u32()
	if !ok1 || !ok2 {
		return nil, errBadProposal
	}
	d.ts = types.Timestamp{Wall: int64(wall), Node: types.ReplicaID(int32(node))}
	swall, ok1 := u64()
	snode, ok2 := u32()
	if !ok1 || !ok2 {
		return nil, errBadProposal
	}
	d.snapTS = types.Timestamp{Wall: int64(swall), Node: types.ReplicaID(int32(snode))}
	cn, ok := u32()
	if !ok {
		return nil, errBadProposal
	}
	for i := uint32(0); i < cn; i++ {
		var tc msg.TimestampedCommand
		w, ok1 := u64()
		nd, ok2 := u32()
		og, ok3 := u32()
		sq, ok4 := u64()
		pl, ok5 := u32()
		if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 || uint64(len(b)) < uint64(pl) {
			return nil, errBadProposal
		}
		tc.TS = types.Timestamp{Wall: int64(w), Node: types.ReplicaID(int32(nd))}
		tc.Cmd.ID = types.CommandID{Origin: types.ReplicaID(int32(og)), Seq: sq}
		tc.Cmd.Payload = append([]byte(nil), b[:pl]...)
		b = b[pl:]
		d.cmds = append(d.cmds, tc)
	}
	if len(b) != 0 {
		return nil, errBadProposal
	}
	return d, nil
}
