package sim

import (
	"testing"
	"time"

	"clockrsm/internal/msg"
	"clockrsm/internal/rsm"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// TestNetworkBroadcastMatchesSend verifies that Broadcast delivers to
// every live destination with Send's latency and FIFO semantics, and
// honors crashes and partitions per destination.
func TestNetworkBroadcastMatchesSend(t *testing.T) {
	eng := NewEngine()
	lat := wan.Uniform(4, 10*time.Millisecond)
	net := NewNetwork(eng, lat, 0, nil)
	got := make([][]uint64, 4)
	for i := 0; i < 4; i++ {
		i := i
		net.Register(types.ReplicaID(i), func(from types.ReplicaID, m msg.Message) {
			got[i] = append(got[i], m.(*msg.Commit).Slot)
		})
	}
	dst := []types.ReplicaID{0, 1, 2, 3}
	net.Crash(3)
	net.Partition(0, 2)
	eng.At(0, func() {
		net.Broadcast(0, dst, &msg.Commit{Slot: 1})
		net.Broadcast(0, dst, &msg.Commit{Slot: 2})
	})
	eng.RunUntilIdle()
	if len(got[0]) != 0 {
		t.Fatalf("self received broadcast: %v", got[0])
	}
	if len(got[1]) != 2 || got[1][0] != 1 || got[1][1] != 2 {
		t.Fatalf("replica 1 got %v, want FIFO [1 2]", got[1])
	}
	if len(got[2]) != 0 {
		t.Fatalf("partitioned replica 2 got %v", got[2])
	}
	if len(got[3]) != 0 {
		t.Fatalf("crashed replica 3 got %v", got[3])
	}
	if net.Sent != 6 {
		t.Fatalf("Sent = %d, want 6 (2 broadcasts × 3 non-self dst)", net.Sent)
	}
	// Healing delivers the held messages in order.
	net.Heal(0, 2)
	eng.RunUntilIdle()
	if len(got[2]) != 2 || got[2][0] != 1 || got[2][1] != 2 {
		t.Fatalf("after heal replica 2 got %v, want [1 2]", got[2])
	}
}

// TestReplicaImplementsMulticaster pins the fast path: rsm.Broadcast
// over a sim replica must take the single-pass SendAll route and reach
// every peer.
func TestReplicaImplementsMulticaster(t *testing.T) {
	c := NewCluster(wan.Uniform(3, 5*time.Millisecond), ClusterOptions{})
	var env rsm.Env = c.Replicas[0]
	if _, ok := env.(rsm.Multicaster); !ok {
		t.Fatal("sim replica does not implement rsm.Multicaster")
	}
	delivered := make(map[types.ReplicaID]int)
	for i := 1; i < 3; i++ {
		id := types.ReplicaID(i)
		c.Net.Register(id, func(from types.ReplicaID, m msg.Message) {
			delivered[id]++
		})
	}
	c.Eng.At(0, func() {
		rsm.Broadcast(c.Replicas[0], []types.ReplicaID{0, 1, 2}, &msg.Commit{Slot: 9})
	})
	c.Eng.RunUntilIdle()
	if delivered[1] != 1 || delivered[2] != 1 {
		t.Fatalf("broadcast deliveries = %v, want one per peer", delivered)
	}
}
