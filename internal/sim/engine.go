// Package sim is a deterministic discrete-event simulator used to run
// the replication protocols over emulated wide-area networks. Virtual
// time advances from event to event, so a multi-minute geo-replication
// experiment completes in milliseconds of real time and results are
// bit-for-bit reproducible for a given seed.
package sim

import (
	"container/heap"
	"time"
)

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tiebreak: FIFO among events at the same instant
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; all protocol code in the simulator runs on the
// caller's goroutine.
type Engine struct {
	now   time.Duration
	pq    eventHeap
	seq   uint64
	steps uint64
}

// NewEngine returns an engine at virtual time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Steps returns the number of events processed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// At schedules fn at absolute virtual time t. Scheduling in the past
// runs the event at the current time (never before: time is monotonic).
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.pq, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d from now.
func (e *Engine) After(d time.Duration, fn func()) { e.At(e.now+d, fn) }

// RunUntil processes events in timestamp order until the queue is empty
// or the next event is later than until. Virtual time is left at the
// last processed event (or until, if nothing ran later).
func (e *Engine) RunUntil(until time.Duration) {
	for len(e.pq) > 0 && e.pq[0].at <= until {
		e.step()
	}
	if e.now < until {
		e.now = until
	}
}

// RunUntilIdle processes events until none remain. Protocols with
// periodic timers never go idle; use RunUntil for those.
func (e *Engine) RunUntilIdle() {
	for len(e.pq) > 0 {
		e.step()
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.pq) }

// step pops and runs the next event.
func (e *Engine) step() {
	ev := heap.Pop(&e.pq).(*event)
	e.now = ev.at
	e.steps++
	ev.fn()
}
