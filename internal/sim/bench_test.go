package sim

import (
	"testing"
	"time"

	"clockrsm/internal/msg"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(time.Duration(i%1000)*time.Microsecond, func() {})
		if e.Pending() > 4096 {
			e.RunUntilIdle()
		}
	}
	e.RunUntilIdle()
}

func BenchmarkEngineRun(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	fn := func() {}
	for i := 0; i < b.N; i++ {
		e.After(time.Microsecond, fn)
		e.RunUntilIdle()
	}
}

func BenchmarkNetworkSendDeliver(b *testing.B) {
	e := NewEngine()
	n := NewNetwork(e, wan.Uniform(5, time.Millisecond), 0, nil)
	m := &msg.Commit{Slot: 1}
	for i := 0; i < 5; i++ {
		n.Register(types.ReplicaID(i), func(types.ReplicaID, msg.Message) {})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Send(0, types.ReplicaID(1+i%4), m)
		if e.Pending() > 4096 {
			e.RunUntilIdle()
		}
	}
	e.RunUntilIdle()
}
