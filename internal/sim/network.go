package sim

import (
	"math/rand"
	"time"

	"clockrsm/internal/msg"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// Handler receives a message delivered to a replica.
type Handler func(from types.ReplicaID, m msg.Message)

// Network delivers messages between simulated replicas with the one-way
// latencies of a wan.Matrix. Links are FIFO (Section II-A assumes FIFO
// delivery); jitter, crashes and partitions can be injected for failure
// testing.
type Network struct {
	eng      *Engine
	lat      *wan.Matrix
	handlers []Handler
	// lastArrival[from][to] enforces per-link FIFO delivery even when
	// jitter would reorder messages.
	lastArrival [][]time.Duration
	down        []bool
	cut         map[[2]types.ReplicaID]bool
	// held buffers messages sent across a partitioned link; they are
	// (re)delivered when the link heals — the model assumes messages are
	// eventually delivered (Section II-A). Messages to crashed replicas
	// are dropped instead: the process lost its connections.
	held   map[[2]types.ReplicaID][]msg.Message
	jitter time.Duration
	rng    *rand.Rand

	// Sent counts messages handed to the network, Delivered counts
	// messages that reached a live handler.
	Sent      uint64
	Delivered uint64
}

// NewNetwork creates a network over lat. jitter, when positive, adds a
// uniform random delay in [0, jitter) to every message using rng (which
// may be nil when jitter is zero).
func NewNetwork(eng *Engine, lat *wan.Matrix, jitter time.Duration, rng *rand.Rand) *Network {
	n := lat.Size()
	la := make([][]time.Duration, n)
	for i := range la {
		la[i] = make([]time.Duration, n)
	}
	return &Network{
		eng:         eng,
		lat:         lat,
		handlers:    make([]Handler, n),
		lastArrival: la,
		down:        make([]bool, n),
		cut:         make(map[[2]types.ReplicaID]bool),
		held:        make(map[[2]types.ReplicaID][]msg.Message),
		jitter:      jitter,
		rng:         rng,
	}
}

// Size returns the number of replicas attached to the network.
func (n *Network) Size() int { return n.lat.Size() }

// Register installs the message handler for replica id.
func (n *Network) Register(id types.ReplicaID, h Handler) { n.handlers[id] = h }

// Send schedules delivery of m from one replica to another after the
// link's one-way latency (plus jitter), preserving FIFO order per link.
// Messages to or from crashed replicas, or across a partition, are
// dropped — the sender's TCP connection would have failed.
func (n *Network) Send(from, to types.ReplicaID, m msg.Message) {
	n.Sent++
	if n.down[from] || n.down[to] {
		return
	}
	n.sendOne(from, to, m)
}

// sendOne is the per-link delivery tail shared by Send and Broadcast:
// partition hold, latency + jitter, FIFO clamp, scheduled hand-off.
// Callers have already counted the message and checked both endpoints
// for crashes.
func (n *Network) sendOne(from, to types.ReplicaID, m msg.Message) {
	if key := linkKey(from, to); n.cut[key] {
		n.held[key] = append(n.held[key], m)
		return
	}
	d := n.lat.OneWay(from, to)
	if n.jitter > 0 {
		d += time.Duration(n.rng.Int63n(int64(n.jitter)))
	}
	arrival := n.eng.Now() + d
	if arrival < n.lastArrival[from][to] {
		arrival = n.lastArrival[from][to]
	}
	n.lastArrival[from][to] = arrival
	n.eng.At(arrival, func() {
		if n.down[to] || n.handlers[to] == nil {
			return
		}
		n.Delivered++
		n.handlers[to](from, m)
	})
}

// Broadcast schedules delivery of m from one replica to every other
// replica in dst, with per-link semantics identical to Send (the tail
// is shared). The sender-side crash check is paid once for the whole
// fan-out, so wide broadcasts — the dominant message pattern of
// Clock-RSM — cost less simulator CPU per peer.
func (n *Network) Broadcast(from types.ReplicaID, dst []types.ReplicaID, m msg.Message) {
	if n.down[from] {
		for _, to := range dst {
			if to != from {
				n.Sent++ // handed to the network, like Send counts it
			}
		}
		return
	}
	for _, to := range dst {
		if to == from {
			continue
		}
		n.Sent++
		if n.down[to] {
			continue
		}
		n.sendOne(from, to, m)
	}
}

// Crash marks a replica as failed: in-flight messages to it are lost and
// it neither sends nor receives until Restart.
func (n *Network) Crash(id types.ReplicaID) { n.down[id] = true }

// Restart brings a crashed replica back; its handler receives messages
// sent after the restart.
func (n *Network) Restart(id types.ReplicaID) { n.down[id] = false }

// IsDown reports whether the replica is crashed.
func (n *Network) IsDown(id types.ReplicaID) bool { return n.down[id] }

// Partition cuts the bidirectional link between a and b.
func (n *Network) Partition(a, b types.ReplicaID) {
	n.cut[linkKey(a, b)] = true
	n.cut[linkKey(b, a)] = true
}

// Heal restores the link between a and b; messages held during the
// partition are delivered in order ahead of new traffic.
func (n *Network) Heal(a, b types.ReplicaID) {
	for _, key := range [][2]types.ReplicaID{linkKey(a, b), linkKey(b, a)} {
		delete(n.cut, key)
		held := n.held[key]
		delete(n.held, key)
		for _, m := range held {
			n.Send(key[0], key[1], m)
			n.Sent-- // the original Send already counted it
		}
	}
}

func linkKey(a, b types.ReplicaID) [2]types.ReplicaID { return [2]types.ReplicaID{a, b} }
