package sim

import (
	"math/rand"
	"time"

	"clockrsm/internal/clock"
	"clockrsm/internal/msg"
	"clockrsm/internal/rsm"
	"clockrsm/internal/storage"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// Replica is one simulated replica: an rsm.Env implementation bound to
// the cluster's engine and network.
type Replica struct {
	id    types.ReplicaID
	spec  []types.ReplicaID
	clk   clock.Clock
	eng   *Engine
	net   *Network
	log   storage.Log
	proto rsm.Protocol
	// gen invalidates outstanding timers across crashes: a timer fires
	// only if the replica generation is unchanged.
	gen int
}

var (
	_ rsm.Env         = (*Replica)(nil)
	_ rsm.Multicaster = (*Replica)(nil)
)

// ID implements rsm.Env.
func (r *Replica) ID() types.ReplicaID { return r.id }

// Spec implements rsm.Env.
func (r *Replica) Spec() []types.ReplicaID { return r.spec }

// Clock implements rsm.Env.
func (r *Replica) Clock() int64 { return r.clk.Now() }

// Send implements rsm.Env.
func (r *Replica) Send(to types.ReplicaID, m msg.Message) { r.net.Send(r.id, to, m) }

// SendAll implements rsm.Multicaster: rsm.Broadcast fans out through
// the network's single-pass broadcast instead of per-peer Send calls.
func (r *Replica) SendAll(dst []types.ReplicaID, m msg.Message) { r.net.Broadcast(r.id, dst, m) }

// After implements rsm.Env.
func (r *Replica) After(d time.Duration, fn func()) {
	gen := r.gen
	r.eng.After(d, func() {
		if r.gen == gen && !r.net.IsDown(r.id) {
			fn()
		}
	})
}

// Log implements rsm.Env.
func (r *Replica) Log() storage.Log { return r.log }

// SetLog swaps the replica's stable log; used when restarting a crashed
// replica that reopens its on-disk log.
func (r *Replica) SetLog(l storage.Log) { r.log = l }

// SetProtocol binds the protocol instance driven by this replica's
// events. It must be called before Start.
func (r *Replica) SetProtocol(p rsm.Protocol) { r.proto = p }

// Protocol returns the bound protocol instance.
func (r *Replica) Protocol() rsm.Protocol { return r.proto }

// Submit hands a client command to the replica's protocol at the current
// virtual time.
func (r *Replica) Submit(cmd types.Command) { r.proto.Submit(cmd) }

// ClusterOptions configure NewCluster.
type ClusterOptions struct {
	// Skews holds the per-replica clock offset from virtual time;
	// nil means perfectly synchronized clocks.
	Skews []time.Duration
	// Jitter adds uniform random delay in [0, Jitter) per message.
	Jitter time.Duration
	// Seed drives all randomness (jitter); runs with equal seeds are
	// identical.
	Seed int64
	// NewLog constructs each replica's stable log; nil means in-memory.
	NewLog func(id types.ReplicaID) storage.Log
}

// Cluster wires N simulated replicas to one engine and network.
type Cluster struct {
	Eng      *Engine
	Net      *Network
	Replicas []*Replica
	Rand     *rand.Rand
}

// NewCluster builds a cluster over the latency matrix. Protocols are
// attached afterwards with Replica.SetProtocol, then started with Start.
func NewCluster(lat *wan.Matrix, opts ClusterOptions) *Cluster {
	n := lat.Size()
	eng := NewEngine()
	rng := rand.New(rand.NewSource(opts.Seed))
	net := NewNetwork(eng, lat, opts.Jitter, rng)
	spec := make([]types.ReplicaID, n)
	for i := range spec {
		spec[i] = types.ReplicaID(i)
	}
	c := &Cluster{Eng: eng, Net: net, Rand: rng}
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		var skew time.Duration
		if opts.Skews != nil {
			skew = opts.Skews[i]
		}
		var lg storage.Log
		if opts.NewLog != nil {
			lg = opts.NewLog(id)
		} else {
			lg = storage.NewMemLog()
		}
		r := &Replica{
			id:   id,
			spec: spec,
			eng:  eng,
			net:  net,
			log:  lg,
			clk:  newSimClock(eng, skew),
		}
		net.Register(id, func(from types.ReplicaID, m msg.Message) {
			r.proto.Deliver(from, m)
		})
		c.Replicas = append(c.Replicas, r)
	}
	return c
}

// newSimClock returns a strictly-increasing clock reading virtual time
// plus a fixed skew.
func newSimClock(eng *Engine, skew time.Duration) clock.Clock {
	return clock.NewMonotonic(clock.Func(func() int64 {
		return int64(eng.Now() + skew)
	}))
}

// Start starts every replica's protocol.
func (c *Cluster) Start() {
	for _, r := range c.Replicas {
		r.proto.Start()
	}
}

// Crash fails a replica: messages stop flowing and its pending timers
// are invalidated. Its log survives for recovery.
func (c *Cluster) Crash(id types.ReplicaID) {
	c.Net.Crash(id)
	c.Replicas[id].gen++
}

// Restart revives a crashed replica. Callers typically install a fresh
// protocol instance (recovered from the on-disk log) before resuming.
func (c *Cluster) Restart(id types.ReplicaID) {
	c.Net.Restart(id)
	c.Replicas[id].gen++
}
