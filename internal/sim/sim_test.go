package sim

import (
	"testing"
	"time"

	"clockrsm/internal/msg"
	"clockrsm/internal/rsm"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

func TestEngineOrdersEvents(t *testing.T) {
	e := NewEngine()
	var got []int
	e.After(ms(30), func() { got = append(got, 3) })
	e.After(ms(10), func() { got = append(got, 1) })
	e.After(ms(20), func() { got = append(got, 2) })
	e.RunUntilIdle()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if e.Now() != ms(30) {
		t.Errorf("Now = %v", e.Now())
	}
	if e.Steps() != 3 {
		t.Errorf("Steps = %d", e.Steps())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(ms(5), func() { got = append(got, i) })
	}
	e.RunUntilIdle()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant order = %v", got)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.After(ms(10), func() { ran++ })
	e.After(ms(20), func() { ran++ })
	e.RunUntil(ms(15))
	if ran != 1 {
		t.Errorf("ran = %d, want 1", ran)
	}
	if e.Now() != ms(15) {
		t.Errorf("Now = %v, want 15ms", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d", e.Pending())
	}
	e.RunUntil(ms(25))
	if ran != 2 {
		t.Errorf("ran = %d, want 2", ran)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []time.Duration
	e.After(ms(10), func() {
		times = append(times, e.Now())
		e.After(ms(5), func() { times = append(times, e.Now()) })
	})
	e.RunUntilIdle()
	if len(times) != 2 || times[0] != ms(10) || times[1] != ms(15) {
		t.Errorf("times = %v", times)
	}
}

func TestEnginePastSchedulingClamped(t *testing.T) {
	e := NewEngine()
	var at time.Duration = -1
	e.After(ms(10), func() {
		e.At(ms(1), func() { at = e.Now() }) // in the past
	})
	e.RunUntilIdle()
	if at != ms(10) {
		t.Errorf("past event ran at %v, want 10ms", at)
	}
}

// recorder collects deliveries for network tests.
type recorder struct {
	from []types.ReplicaID
	at   []time.Duration
	eng  *Engine
}

func (r *recorder) handler() Handler {
	return func(from types.ReplicaID, m msg.Message) {
		r.from = append(r.from, from)
		r.at = append(r.at, r.eng.Now())
	}
}

func TestNetworkDelivery(t *testing.T) {
	e := NewEngine()
	lat := wan.NewMatrix(2)
	lat.Set(0, 1, ms(40))
	n := NewNetwork(e, lat, 0, nil)
	rec := &recorder{eng: e}
	n.Register(1, rec.handler())
	n.Send(0, 1, &msg.Commit{Slot: 1})
	e.RunUntilIdle()
	if len(rec.at) != 1 || rec.at[0] != ms(40) {
		t.Errorf("delivery at %v", rec.at)
	}
	if n.Sent != 1 || n.Delivered != 1 {
		t.Errorf("counters sent=%d delivered=%d", n.Sent, n.Delivered)
	}
}

func TestNetworkFIFOPerLink(t *testing.T) {
	e := NewEngine()
	lat := wan.NewMatrix(2)
	lat.Set(0, 1, ms(40))
	n := NewNetwork(e, lat, ms(30), newTestRand())
	rec := &recorder{eng: e}
	n.Register(1, rec.handler())
	var slots []uint64
	n.Register(1, func(from types.ReplicaID, m msg.Message) {
		slots = append(slots, m.(*msg.Commit).Slot)
	})
	for i := uint64(0); i < 50; i++ {
		i := i
		e.After(time.Duration(i)*time.Millisecond, func() {
			n.Send(0, 1, &msg.Commit{Slot: i})
		})
	}
	e.RunUntilIdle()
	if len(slots) != 50 {
		t.Fatalf("delivered %d/50", len(slots))
	}
	for i, s := range slots {
		if s != uint64(i) {
			t.Fatalf("FIFO violated: %v", slots)
		}
	}
}

func TestNetworkCrashDropsMessages(t *testing.T) {
	e := NewEngine()
	lat := wan.Uniform(2, ms(10))
	n := NewNetwork(e, lat, 0, nil)
	rec := &recorder{eng: e}
	n.Register(1, rec.handler())

	n.Crash(1)
	n.Send(0, 1, &msg.Commit{Slot: 1})
	e.RunUntilIdle()
	if len(rec.at) != 0 {
		t.Error("message delivered to crashed replica")
	}
	n.Restart(1)
	n.Send(0, 1, &msg.Commit{Slot: 2})
	e.RunUntilIdle()
	if len(rec.at) != 1 {
		t.Error("message not delivered after restart")
	}
}

func TestNetworkInFlightLostOnCrash(t *testing.T) {
	e := NewEngine()
	lat := wan.Uniform(2, ms(10))
	n := NewNetwork(e, lat, 0, nil)
	rec := &recorder{eng: e}
	n.Register(1, rec.handler())
	n.Send(0, 1, &msg.Commit{Slot: 1}) // in flight
	e.After(ms(5), func() { n.Crash(1) })
	e.RunUntilIdle()
	if len(rec.at) != 0 {
		t.Error("in-flight message delivered to replica that crashed before arrival")
	}
}

func TestNetworkPartition(t *testing.T) {
	e := NewEngine()
	lat := wan.Uniform(3, ms(10))
	n := NewNetwork(e, lat, 0, nil)
	rec1 := &recorder{eng: e}
	rec2 := &recorder{eng: e}
	n.Register(1, rec1.handler())
	n.Register(2, rec2.handler())

	n.Partition(0, 1)
	n.Send(0, 1, &msg.Commit{Slot: 1})
	n.Send(0, 2, &msg.Commit{Slot: 1})
	e.RunUntilIdle()
	if len(rec1.at) != 0 {
		t.Error("message crossed partition")
	}
	if len(rec2.at) != 1 {
		t.Error("unrelated link affected by partition")
	}
	// Healing delivers the held message (eventual delivery, Section
	// II-A) ahead of new traffic.
	n.Heal(0, 1)
	n.Send(0, 1, &msg.Commit{Slot: 2})
	var slots []uint64
	n.Register(1, func(from types.ReplicaID, m msg.Message) {
		slots = append(slots, m.(*msg.Commit).Slot)
	})
	e.RunUntilIdle()
	if len(slots) != 2 || slots[0] != 1 || slots[1] != 2 {
		t.Errorf("delivery after heal = %v, want held message first", slots)
	}
}

// echoProto counts Submit/Deliver calls for cluster tests.
type echoProto struct {
	env      rsm.Env
	got      int
	submits  int
	started  bool
	timerRan bool
}

func (p *echoProto) Start() { p.started = true }

func (p *echoProto) Submit(cmd types.Command) {
	p.submits++
	rsm.Broadcast(p.env, p.env.Spec(), &msg.Commit{Slot: cmd.ID.Seq})
}

func (p *echoProto) Deliver(from types.ReplicaID, m msg.Message) { p.got++ }

func TestClusterWiring(t *testing.T) {
	c := NewCluster(wan.Uniform(3, ms(10)), ClusterOptions{})
	protos := make([]*echoProto, 3)
	for i, r := range c.Replicas {
		protos[i] = &echoProto{env: r}
		r.SetProtocol(protos[i])
	}
	c.Start()
	for _, p := range protos {
		if !p.started {
			t.Fatal("protocol not started")
		}
	}
	c.Replicas[0].Submit(types.Command{ID: types.CommandID{Origin: 0, Seq: 1}})
	c.Eng.RunUntilIdle()
	if protos[0].submits != 1 {
		t.Error("submit not routed")
	}
	if protos[1].got != 1 || protos[2].got != 1 {
		t.Errorf("broadcast delivered %d/%d", protos[1].got, protos[2].got)
	}
	if protos[0].got != 0 {
		t.Error("broadcast echoed to sender")
	}
}

func TestClusterClockSkewAndMonotonicity(t *testing.T) {
	c := NewCluster(wan.Uniform(2, ms(10)), ClusterOptions{
		Skews: []time.Duration{0, ms(5)},
	})
	for _, r := range c.Replicas {
		r.SetProtocol(&echoProto{env: r})
	}
	c.Eng.RunUntil(ms(100))
	r0, r1 := c.Replicas[0], c.Replicas[1]
	if r1.Clock()-r0.Clock() < int64(ms(4)) {
		t.Errorf("skew not applied: r0=%d r1=%d", r0.Clock(), r1.Clock())
	}
	a := r0.Clock()
	b := r0.Clock()
	if b <= a {
		t.Error("replica clock not strictly increasing at fixed virtual time")
	}
}

func TestClusterCrashInvalidatesTimers(t *testing.T) {
	c := NewCluster(wan.Uniform(2, ms(10)), ClusterOptions{})
	p := &echoProto{env: c.Replicas[0]}
	c.Replicas[0].SetProtocol(p)
	c.Replicas[1].SetProtocol(&echoProto{env: c.Replicas[1]})
	c.Start()

	c.Replicas[0].After(ms(50), func() { p.timerRan = true })
	c.Eng.RunUntil(ms(10))
	c.Crash(0)
	c.Eng.RunUntilIdle()
	if p.timerRan {
		t.Error("timer fired after crash")
	}
}

func TestClusterDeterminism(t *testing.T) {
	run := func() uint64 {
		c := NewCluster(wan.EC2Matrix([]wan.Site{wan.CA, wan.VA, wan.IR}), ClusterOptions{
			Jitter: ms(3), Seed: 42,
		})
		for _, r := range c.Replicas {
			r.SetProtocol(&echoProto{env: r})
		}
		c.Start()
		for i := 0; i < 20; i++ {
			i := i
			c.Eng.After(time.Duration(i)*ms(7), func() {
				c.Replicas[i%3].Submit(types.Command{ID: types.CommandID{Origin: types.ReplicaID(i % 3), Seq: uint64(i)}})
			})
		}
		c.Eng.RunUntilIdle()
		return c.Eng.Steps()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic runs: %d vs %d steps", a, b)
	}
}
