// BenchmarkReadPath measures the consistency-tiered read path against
// the replicated-GET baseline: the same five-replica Clock-RSM cluster
// as BenchmarkHotPath, under a fixed closed-loop write load, saturated
// by closed-loop readers in one mode per variant. The read ops/s gap
// between ReadPathReplicated and the local tiers is the PREPARE
// broadcast every pre-read-path GET was paying; the local tiers are
// verified to add zero replication traffic. BENCH_5.json records the
// trajectory; CI runs the variants with -benchtime=1x as a smoke.
package clockrsm_test

import (
	"testing"
	"time"

	"clockrsm/internal/runner"
)

func runReadPath(b *testing.B, mode runner.ReadMode) {
	b.Helper()
	var reads, writes float64
	for i := 0; i < b.N; i++ {
		res, err := runner.RunReadPath(runner.ReadPathConfig{
			Mode:     mode,
			Warmup:   300 * time.Millisecond,
			Duration: 2 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		if mode != runner.ReadReplicated && res.ReadsReplicated != 0 {
			b.Fatalf("mode %s: %d reads entered the replication path, want 0", mode, res.ReadsReplicated)
		}
		reads = res.ReadOpsPerSec
		writes = res.WriteOpsPerSec
	}
	b.ReportMetric(reads, "reads/s")
	b.ReportMetric(writes, "writes/s")
}

// BenchmarkReadPathReplicated is the baseline: every GET replicates
// through the log like a write (the pre-read-path behavior).
func BenchmarkReadPathReplicated(b *testing.B) {
	runReadPath(b, runner.ReadReplicated)
}

// BenchmarkReadPathLinearizable serves GETs from the stable prefix
// after parking until the watermark covers the capture time — the same
// guarantee as the baseline, with zero PREPARE broadcasts.
func BenchmarkReadPathLinearizable(b *testing.B) {
	runReadPath(b, runner.ReadLinearizable)
}

// BenchmarkReadPathSequential serves GETs at the current watermark,
// session-monotonic, one event-loop round-trip per read.
func BenchmarkReadPathSequential(b *testing.B) {
	runReadPath(b, runner.ReadSequential)
}

// BenchmarkReadPathStale serves GETs from the caller's goroutine
// without touching the event loop.
func BenchmarkReadPathStale(b *testing.B) {
	runReadPath(b, runner.ReadStale)
}
