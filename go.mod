module clockrsm

go 1.24
