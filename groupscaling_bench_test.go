// BenchmarkGroupScaling is the multi-core scaling measurement behind
// BENCH_7.json: aggregate committed ops/s of a five-replica cluster
// sharded over 1/2/4 Clock-RSM groups, run over loopback TCP so the
// numbers include the real wire path — per-peer write coalescing and
// pooled zero-allocation decode. Sweep the GOMAXPROCS axis with the
// standard -cpu flag (e.g. -cpu 1,4); each row also reports the wire
// coalescing factor (frames per flush) and the number of flushes that
// mixed frames from more than one group, the direct evidence that
// concurrent groups share syscalls on the common connection.
package clockrsm_test

import (
	"fmt"
	"os"
	"testing"
	"time"

	"clockrsm/internal/runner"
)

func runGroupScaling(b *testing.B, groups int, pinned bool) {
	b.Helper()
	var ops, factor, xg float64
	for i := 0; i < b.N; i++ {
		res, err := runner.RunThroughput(runner.ThroughputConfig{
			Protocol:    runner.ClockRSM,
			PayloadSize: 100,
			Groups:      groups,
			Warmup:      300 * time.Millisecond,
			Duration:    2 * time.Second,
			TCP:         true,
			PinGroups:   pinned,
		})
		if err != nil {
			b.Fatal(err)
		}
		ops = res.OpsPerSec
		if res.Wire != nil && res.Wire.Flushes > 0 {
			factor = float64(res.Wire.Frames) / float64(res.Wire.Flushes)
			xg = float64(res.Wire.MultiGroupFlushes)
		}
	}
	b.ReportMetric(ops, "ops/s")
	b.ReportMetric(factor, "frames/flush")
	b.ReportMetric(xg, "xgroup-flushes")
}

func BenchmarkGroupScaling(b *testing.B) {
	// RSMBENCH_PIN=1 additionally pins each group's event loop to its
	// own CPU (Linux): the affinity experiment of the sweep.
	pinned := os.Getenv("RSMBENCH_PIN") == "1"
	for _, g := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("groups=%d", g), func(b *testing.B) {
			runGroupScaling(b, g, pinned)
		})
	}
}
