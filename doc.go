// Package clockrsm is a from-scratch Go reproduction of "Clock-RSM:
// Low-Latency Inter-Datacenter State Machine Replication Using Loosely
// Synchronized Physical Clocks" (Du, Sciascia, Elnikety, Zwaenepoel,
// Pedone — DSN 2014).
//
// The repository contains:
//
//   - internal/core: the Clock-RSM replication protocol (Algorithm 1),
//     the CLOCKTIME extension (Algorithm 2), and the reconfiguration
//     and recovery protocols (Algorithm 3, Section V);
//   - internal/paxos, internal/mencius: the Multi-Paxos, Paxos-bcast and
//     Mencius-bcast baselines of Section IV;
//   - internal/sim: a deterministic discrete-event simulator that
//     replays the paper's EC2 latency matrix (Table III);
//   - internal/node, internal/transport: a real runtime (goroutine event
//     loops over in-process or TCP transports), including node.Host — a
//     multi-group engine running G independent Clock-RSM groups per
//     node over one shared, group-tagged transport;
//   - internal/shard: the key→group hash underlying both routers, and
//     the fixed mod-G router used before a routing table exists;
//   - internal/reshard: the elastic resharding subsystem — the
//     versioned slot routing table that is the live source of
//     placement truth, and the split coordinator that moves slots
//     between groups under load;
//   - internal/analysis: the analytical latency model of Table II and
//     the numerical study of Figure 7 / Table IV;
//   - internal/rpc, client: the production front door — a multiplexed
//     binary RPC protocol served beside kvserver's line protocol, and
//     the public client library that speaks it;
//   - internal/chaos: the deterministic fault-injection layer — clock
//     anomalies, asymmetric partitions and misbehaving disks driven by
//     seeded, replayable schedules;
//   - internal/runner: the experiment harness regenerating every table
//     and figure of Section VI.
//
// # Hot-path architecture
//
// The paper's headline claim — commit latency bounded by WAN round
// trips, not protocol overhead — holds only if the local
// PREPARE → PREPAREOK → commit path costs near-zero CPU and
// allocation. The messaging hot path is therefore built around four
// cooperating mechanisms:
//
//   - Encode-once broadcast: msg.EncodeTo serializes into pooled,
//     reusable buffers (zero steady-state allocation), and
//     rsm.Broadcast routes through transport.Broadcaster when
//     available, so an N-peer broadcast encodes one frame and shares
//     it (refcounted) across all peer outboxes instead of encoding N
//     times.
//   - Frame batching: msg.Batch packs several messages from one
//     sender into a single wire frame, preserving per-link FIFO
//     order; a Clock-RSM replica coalesces the PREPAREOKs (and other
//     broadcasts) it produces while draining one event-loop batch
//     into one such frame.
//   - Write coalescing: the TCP writeLoop drains its outbox in
//     batches through a bufio.Writer — one flush (typically one
//     syscall) covers a whole burst of frames, and it re-drains
//     (yielding once when several groups share the endpoint) before
//     flushing, so concurrent bursts from many groups to one peer
//     merge into a single cross-group flush (Transport.Counters
//     reports frames, flushes and multi-group flushes). The readLoop
//     reuses a grow-only buffer with capped retention, so
//     steady-state framing allocates nothing on either side.
//   - Pooled decode: the receive path decodes hot-path message types
//     (PREPARE, PREPAREOK, CLOCKTIME and Batch frames of them) into
//     recycled msg.Record arenas — zero allocations per frame,
//     asserted by testing.AllocsPerRun. Messages from
//     msg.DecodeRecycled are valid until msg.Recycle(top) runs (the
//     node event loop recycles after Deliver); components that retain
//     data copy it, and rare message types stay heap-allocated so
//     retaining them is always safe.
//   - Inline ack tracking: the replication bitmask (RepCounter) lives
//     inside each pending-set heap entry rather than in a parallel
//     map, so recording an acknowledgement is one map lookup and a
//     bit-or, and the commit scan reads the mask off the heap head.
//     The node event loop drains queued events in batches bracketed
//     by BeginBatch/EndBatch, so a burst of deliveries triggers one
//     commit cascade.
//   - Client-side batching: commands enter the stack through the
//     asynchronous client API — node.Propose returns a Future that
//     resolves with the command's execution result — and a node's
//     submit buffer (Options.SubmitBatch) flushes up to N buffered
//     proposals into one event-loop turn, so one coalesced PREPARE
//     broadcast covers the chunk (the paper's client-library batching,
//     Section VI-D). A bounded in-flight window (Options.MaxInFlight)
//     applies backpressure: Propose blocks, or fails fast with
//     ErrOverloaded, instead of queueing unbounded work, and Stop
//     resolves every unresolved future with ErrStopped so shutdown
//     never strands a waiter.
//   - Group sharding: a node.Host runs G independent Clock-RSM groups,
//     each with its own event loop, log and commit cascade, over ONE
//     transport endpoint per node — frames carry a 4-byte group tag
//     (negotiated by a versioned handshake, so the message codec is
//     untouched and legacy peers interoperate on group 0), and
//     internal/shard hashes each key into its group. Commands on
//     different keys commit in parallel on multi-core hardware while
//     per-key operations keep a total order, so the single-group
//     throughput ceiling becomes a per-group ceiling.
//
// BenchmarkHotPath (hotpath_bench_test.go) measures the end-to-end
// effect and BenchmarkHotPathMultiGroup its sharded variant;
// BENCH_*.json records the trajectory across PRs.
//
// # Operator API
//
// Membership change (Algorithm 3 RECONFIGURE) is exposed as a
// first-class control-plane surface rather than an internal recovery
// path. Protocols that support it implement rsm.Reconfigurable —
// Reconfigure proposes a member set, ConfigView reads the installed
// epoch/members, and a configuration listener reports every installed
// epoch plus the locally originated commands a reconfiguration
// discarded. The runtime builds on that hook:
//
//   - node.Node gains Members/Epoch/InConfig/Status accessors (lock-free
//     snapshots, off the data hot path; commit latency is subsampled
//     into a fixed ring) and Reconfigure(ctx, members) — a membership
//     change proposed through the same Future machinery as data
//     commands, resolving when the targeted epoch's decision installs
//     (ErrConfigConflict if a competing proposal won it).
//   - node.Host gains ReconfigureAll(ctx, members), which drives every
//     hosted group to the new configuration with per-group epoch
//     barriers, retrying conflicted groups until all of them hold
//     exactly the requested member set, and Status(), a per-group
//     epoch/config/in-flight/latency snapshot.
//   - Typed errors make resubmission decisions safe: ErrNotInConfig
//     (replica outside the configuration; in-flight futures resolve
//     with it on the removal transition instead of parking) and
//     ErrReconfigured (command provably discarded by a
//     reconfiguration) both guarantee the command never executed.
//   - kvserver serves MEMBERS / EPOCH / STATUS / RECONF on the client
//     port and kvctl has matching subcommands, so an operator can grow
//     and shrink a live cluster from the CLI;
//     runner.RunMembershipChurn asserts the whole story end to end
//     (3→5→3 under load, zero lost or duplicated commands).
//
// # Elastic resharding
//
// The key space is divided into a fixed set of hash slots
// (256 × the genesis group count; reshard.Legacy places slot s at
// group s mod G, bit-identical to the old fixed router, so adopting
// the table moves no key). A versioned routing table (reshard.Table)
// records one claim per slot — owner, generation, and Owned/Migrating
// phase — and replaces hash-mod-G as the source of placement truth.
// Claims merge monotonically (higher generation wins; at equal
// generation the ownership flip supersedes the fence), so replicas
// fold in routing news from logs, snapshots and disk in any order and
// converge to one outcome. Each host persists its table beside the WAL
// (<log>.routes), which is also what legitimizes restarting with a
// grown -groups value: capacity beyond the table's active groups runs
// as warm spares for future splits.
//
// A live split (reshard.Coordinator, Host.Split) moves the upper half
// of a group's slots to a spare in four phases: a FENCE command
// replicated in the source group's log freezes the moving slots at one
// log position (every replica redirects later writes to those slots —
// the linearization barrier); a checkpoint of the frozen slots is
// snapshotted at the source; INSTALL chunks replicated in the target
// group's log seed the frozen pairs; the final chunk flips ownership.
// The coordinator holds no state of its own — every durable step lives
// in a group log — so a coordinator that dies mid-split leaves a table
// still showing Migrating claims, and any other coordinator's Heal
// rolls the transfer forward; per-(source, generation) seed records
// make duplicate installs no-ops, so racing healers converge to
// exactly one owner per slot. Writes route through Host.Execute, which
// retries through node.ErrWrongGroup redirects (surfaced on the RPC
// wire as rpc.StatusWrongGroup); reads refuse Migrating slots at serve
// time rather than risk a stale source copy. runner.RunSplitChurn
// drives the whole story over real TCP and file logs: a
// coordinator-crash-mid-split healed by two racing coordinators, then
// a clean split, under closed-loop load with per-key linearizability
// asserted across the boundary.
//
// # Read path
//
// Reads do not replicate. Clock-RSM commits strictly in timestamp
// order, so each replica derives an executed watermark — the highest
// timestamp below which everything has executed locally and nothing
// can commit anymore (rsm.StateReader, implemented by core.Replica
// from LatestTV, the pending head and the local clock; the same
// stability rule that commits writes). node.Node.Read(ctx, query,
// level) serves read-only queries from local state against it
// (rsm.StateQuerier, bypassing Apply and OnReply) at three levels:
// node.Linearizable captures the local clock and parks on a
// timestamp-ordered waiter queue until the watermark covers it —
// correct with no clock-skew bound, because a write only completes
// once every configured clock passed its timestamp; node.Sequential
// serves the current watermark immediately, monotonic across replicas
// through a node.Session token; node.Stale serves from the caller's
// goroutine against a lock-free watermark cache, bounded by a maximum
// age (ErrTooStale beyond it). Host.Read/ReadKey route reads through
// the shard router to the key's group, kvserver exposes GETL/GETS/GETA
// next to the replicated GET, and protocols without a watermark
// (paxos, mencius) fall back to replicating reads as commands. Reads
// at a removed replica fail with ErrNotInConfig, the same sweep
// contract as write futures. BenchmarkReadPath* measures the tiers
// against the replicated baseline (runner.ReadScaling, BENCH_5.json).
//
// # Front door
//
// The production client path is a length-prefixed, multiplexed binary
// RPC protocol (internal/rpc): every request carries an ID, many
// requests pipeline over one connection, and responses complete out of
// order — so one socket amortizes commit latency across a whole window
// instead of paying it per command like the line protocol's strict
// write-then-read. Frames reuse the replica wire's pooled-buffer
// encode and borrow-from-input decode discipline. kvserver serves it
// on -rpc beside the legacy line protocol; the public client package
// wraps it with a bounded in-flight window, replica failover,
// automatic resubmission of provably-unexecuted commands
// (ErrNotInConfig/ErrReconfigured — reads also resubmit on connection
// loss, writes fail with client.ErrConnLost rather than risk a
// duplicate), and session-sticky sequential reads whose monotonic
// token survives failover. The server side admits work against
// per-connection and global in-flight budgets and sheds overload
// immediately with a typed wire error (rpc.ErrOverloaded mapping to
// node.ErrOverloaded) instead of queueing without bound; STATUS
// reports conns/inflight/accepted/shed. runner.RunFrontDoor measures
// both protocols against the same cluster (BenchmarkRPCPipeline,
// BENCH_8.json).
//
// # Fault injection
//
// Clock-RSM's correctness never depends on clock synchrony — only its
// latency does — and internal/chaos exists to prove that, not assume
// it. The chaos engine wraps the three substrates the runtime already
// abstracts behind interfaces, so faults inject at exactly the seams a
// real deployment fails at, with zero changes to protocol code: raw
// clock sources (per-replica jump/freeze/rollback/drift, applied
// underneath the deployment's clock.Monotonic guard — where an NTP
// step or a VM migration actually lands), transports (asymmetric
// one-way drops, flapping links, per-link delay spikes with FIFO order
// preserved), and stable logs (slow appends, fsync stalls, transient
// write errors). Every fault comes from a Schedule — a declarative,
// seeded, binary-codable fault-window list (chaos.Random,
// EncodeSchedule/DecodeSchedule) — so a failing run replays
// bit-for-bit. Injection counters flow from chaos.Engine through
// node.HostStatus.Faults into kvserver's STATUS line, and
// runner.RunChaosMatrix sweeps ten scenarios against a live
// multi-group cluster under closed-loop load, asserting per-key
// linearizability, zero lost acks, zero duplicate executions and
// bounded post-fault recovery.
//
// Bringing the matrix up found two real protocol bugs. First, the
// stability rule omitted the replica's own clock, so a clock rollback
// at the origin could execute a later-timestamped entry before an
// earlier one. Second, the transport is best-effort and PREPAREs are
// never retransmitted, so a one-way drop window outliving a
// reconfiguration install silently ate PREPAREs forever; the fix makes
// every hot message carry a cumulative sent-counter, the receiver
// proves gaps from it (GroupStatus.LinkGaps — non-zero under a healthy
// network means the transport is silently dropping traffic), and a
// proven gap forces a self-repair rejoin. The matrix fails without
// either fix. kvserver can arm the engine in test deployments with
// -chaos-seed / -chaos-schedule; see README.md "Chaos testing".
//
// See README.md for a guided tour, DESIGN.md for the system inventory
// and EXPERIMENTS.md for paper-vs-measured results. The root-level
// benchmarks (bench_test.go) regenerate each evaluation artifact:
//
//	go test -bench=. -benchmem
package clockrsm
