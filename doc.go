// Package clockrsm is a from-scratch Go reproduction of "Clock-RSM:
// Low-Latency Inter-Datacenter State Machine Replication Using Loosely
// Synchronized Physical Clocks" (Du, Sciascia, Elnikety, Zwaenepoel,
// Pedone — DSN 2014).
//
// The repository contains:
//
//   - internal/core: the Clock-RSM replication protocol (Algorithm 1),
//     the CLOCKTIME extension (Algorithm 2), and the reconfiguration
//     and recovery protocols (Algorithm 3, Section V);
//   - internal/paxos, internal/mencius: the Multi-Paxos, Paxos-bcast and
//     Mencius-bcast baselines of Section IV;
//   - internal/sim: a deterministic discrete-event simulator that
//     replays the paper's EC2 latency matrix (Table III);
//   - internal/node, internal/transport: a real runtime (goroutine event
//     loops over in-process or TCP transports);
//   - internal/analysis: the analytical latency model of Table II and
//     the numerical study of Figure 7 / Table IV;
//   - internal/runner: the experiment harness regenerating every table
//     and figure of Section VI.
//
// See README.md for a guided tour, DESIGN.md for the system inventory
// and EXPERIMENTS.md for paper-vs-measured results. The root-level
// benchmarks (bench_test.go) regenerate each evaluation artifact:
//
//	go test -bench=. -benchmem
package clockrsm
