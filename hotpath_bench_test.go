// BenchmarkHotPath is the headline end-to-end hot-path benchmark: a
// local five-replica Clock-RSM cluster over the in-process transport
// with the binary codec enabled (Figure-8 style), saturated by
// closed-loop clients. The custom ops/s metric is the number tracked in
// BENCH_*.json across PRs; CI runs it with -benchtime=1x as a smoke.
package clockrsm_test

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"clockrsm/internal/runner"
	"clockrsm/internal/storage"
	"clockrsm/internal/types"
)

func runHotPath(b *testing.B, payload, groups int) {
	b.Helper()
	runHotPathBatch(b, payload, groups, 1)
}

func runHotPathBatch(b *testing.B, payload, groups, clientBatch int) {
	b.Helper()
	var ops float64
	for i := 0; i < b.N; i++ {
		res, err := runner.RunThroughput(runner.ThroughputConfig{
			Protocol:    runner.ClockRSM,
			PayloadSize: payload,
			Groups:      groups,
			ClientBatch: clientBatch,
			Warmup:      300 * time.Millisecond,
			Duration:    2 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		ops = res.OpsPerSec
	}
	b.ReportMetric(ops, "ops/s")
}

// BenchmarkHotPath saturates Clock-RSM with 100-byte commands (the
// paper's medium size) and reports committed commands per second.
func BenchmarkHotPath(b *testing.B) {
	runHotPath(b, 100, 1)
}

// BenchmarkHotPathSmall uses 10-byte commands, where per-message CPU
// overhead (encode, frame, syscall) dominates payload cost.
func BenchmarkHotPathSmall(b *testing.B) {
	runHotPath(b, 10, 1)
}

// BenchmarkHotPathBatch8 enables client-side batching (node submit
// buffer, paper Section VI-D) with width 8: up to eight proposals
// flush into one event-loop turn and share one coalesced PREPARE
// broadcast. BENCH_3.json records the 1/8/64 batch-scaling study.
func BenchmarkHotPathBatch8(b *testing.B) {
	runHotPathBatch(b, 100, 1, 8)
}

// BenchmarkHotPathBatch64 widens the client batch to 64 (client count
// scales with the batch so flushes can fill).
func BenchmarkHotPathBatch64(b *testing.B) {
	runHotPathBatch(b, 100, 1, 64)
}

// runHotPathFsync is the durability A/B: the same saturated hot path,
// but every replica logs to a real FileLog in the given fsync mode.
// In SyncBatch mode the event loop's group commit covers each batch
// turn's appends with one fsync before the acknowledgements leave (the
// core↔storage durability barrier); SyncOff prices the same writes
// with no fsync at all. BENCH_6.json records the pair measured on
// /dev/shm (TMPDIR=/dev/shm), where the acceptance bar is batch within
// 5% of off.
func runHotPathFsync(b *testing.B, mode storage.SyncMode) {
	b.Helper()
	var ops float64
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		res, err := runner.RunThroughput(runner.ThroughputConfig{
			Protocol:    runner.ClockRSM,
			PayloadSize: 100,
			Warmup:      300 * time.Millisecond,
			Duration:    2 * time.Second,
			NewLog: func(r types.ReplicaID, g types.GroupID) storage.Log {
				path := filepath.Join(dir, fmt.Sprintf("r%d-g%d.wal", r, g))
				l, err := storage.OpenFileLog(path, storage.FileLogOptions{Mode: mode})
				if err != nil {
					b.Fatalf("open %s: %v", path, err)
				}
				return l
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		ops = res.OpsPerSec
	}
	b.ReportMetric(ops, "ops/s")
}

// BenchmarkHotPathFsyncBatch measures the full stack with group-commit
// durability on: one covering fsync per event-loop batch turn.
func BenchmarkHotPathFsyncBatch(b *testing.B) {
	runHotPathFsync(b, storage.SyncBatch)
}

// BenchmarkHotPathFsyncOff is the baseline for the durability tax: the
// same file logs, no fsync.
func BenchmarkHotPathFsyncOff(b *testing.B) {
	runHotPathFsync(b, storage.SyncOff)
}

// BenchmarkHotPathMultiGroup shards the same five-node cluster across
// four independent Clock-RSM groups multiplexed over one transport
// endpoint per replica, with commands key-routed by internal/shard.
// Aggregate ops/s scales with groups until cores saturate; BENCH_2.json
// records the ratio against BenchmarkHotPath on the same hardware.
func BenchmarkHotPathMultiGroup(b *testing.B) {
	runHotPath(b, 100, 4)
}
