// BenchmarkHotPath is the headline end-to-end hot-path benchmark: a
// local five-replica Clock-RSM cluster over the in-process transport
// with the binary codec enabled (Figure-8 style), saturated by
// closed-loop clients. The custom ops/s metric is the number tracked in
// BENCH_*.json across PRs; CI runs it with -benchtime=1x as a smoke.
package clockrsm_test

import (
	"testing"
	"time"

	"clockrsm/internal/runner"
)

func runHotPath(b *testing.B, payload, groups int) {
	b.Helper()
	runHotPathBatch(b, payload, groups, 1)
}

func runHotPathBatch(b *testing.B, payload, groups, clientBatch int) {
	b.Helper()
	var ops float64
	for i := 0; i < b.N; i++ {
		res, err := runner.RunThroughput(runner.ThroughputConfig{
			Protocol:    runner.ClockRSM,
			PayloadSize: payload,
			Groups:      groups,
			ClientBatch: clientBatch,
			Warmup:      300 * time.Millisecond,
			Duration:    2 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		ops = res.OpsPerSec
	}
	b.ReportMetric(ops, "ops/s")
}

// BenchmarkHotPath saturates Clock-RSM with 100-byte commands (the
// paper's medium size) and reports committed commands per second.
func BenchmarkHotPath(b *testing.B) {
	runHotPath(b, 100, 1)
}

// BenchmarkHotPathSmall uses 10-byte commands, where per-message CPU
// overhead (encode, frame, syscall) dominates payload cost.
func BenchmarkHotPathSmall(b *testing.B) {
	runHotPath(b, 10, 1)
}

// BenchmarkHotPathBatch8 enables client-side batching (node submit
// buffer, paper Section VI-D) with width 8: up to eight proposals
// flush into one event-loop turn and share one coalesced PREPARE
// broadcast. BENCH_3.json records the 1/8/64 batch-scaling study.
func BenchmarkHotPathBatch8(b *testing.B) {
	runHotPathBatch(b, 100, 1, 8)
}

// BenchmarkHotPathBatch64 widens the client batch to 64 (client count
// scales with the batch so flushes can fill).
func BenchmarkHotPathBatch64(b *testing.B) {
	runHotPathBatch(b, 100, 1, 64)
}

// BenchmarkHotPathMultiGroup shards the same five-node cluster across
// four independent Clock-RSM groups multiplexed over one transport
// endpoint per replica, with commands key-routed by internal/shard.
// Aggregate ops/s scales with groups until cores saturate; BENCH_2.json
// records the ratio against BenchmarkHotPath on the same hardware.
func BenchmarkHotPathMultiGroup(b *testing.B) {
	runHotPath(b, 100, 4)
}
