// BenchmarkHotPath is the headline end-to-end hot-path benchmark: a
// local five-replica Clock-RSM cluster over the in-process transport
// with the binary codec enabled (Figure-8 style), saturated by
// closed-loop clients. The custom ops/s metric is the number tracked in
// BENCH_*.json across PRs; CI runs it with -benchtime=1x as a smoke.
package clockrsm_test

import (
	"testing"
	"time"

	"clockrsm/internal/runner"
)

func runHotPath(b *testing.B, payload int) {
	b.Helper()
	var ops float64
	for i := 0; i < b.N; i++ {
		res, err := runner.RunThroughput(runner.ThroughputConfig{
			Protocol:    runner.ClockRSM,
			PayloadSize: payload,
			Warmup:      300 * time.Millisecond,
			Duration:    2 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		ops = res.OpsPerSec
	}
	b.ReportMetric(ops, "ops/s")
}

// BenchmarkHotPath saturates Clock-RSM with 100-byte commands (the
// paper's medium size) and reports committed commands per second.
func BenchmarkHotPath(b *testing.B) {
	runHotPath(b, 100)
}

// BenchmarkHotPathSmall uses 10-byte commands, where per-message CPU
// overhead (encode, frame, syscall) dominates payload cost.
func BenchmarkHotPathSmall(b *testing.B) {
	runHotPath(b, 10)
}
