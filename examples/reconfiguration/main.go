// Reconfiguration: failure handling end to end (Section V).
//
// A five-replica Clock-RSM cluster runs on the simulator. Midway, one
// replica crashes: the failure detector suspects it, the remaining
// replicas run the reconfiguration protocol (Algorithm 3) and continue
// committing in epoch 1 without it. Later the crashed replica recovers
// from its log, rejoins via another reconfiguration, and catches up on
// everything it missed.
//
//	go run ./examples/reconfiguration
package main

import (
	"fmt"
	"log"
	"time"

	"clockrsm/internal/core"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/rsm"
	"clockrsm/internal/sim"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 5
	cluster := sim.NewCluster(wan.Uniform(n, 10*time.Millisecond), sim.ClusterOptions{Seed: 1})
	opts := core.Options{
		ClockTimeInterval: 5 * time.Millisecond,
		SuspectTimeout:    300 * time.Millisecond,
		ConsensusRetry:    500 * time.Millisecond,
	}

	stores := make([]*kvstore.Store, n)
	reps := make([]*core.Replica, n)
	committed := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		stores[i] = kvstore.New()
		app := &rsm.App{
			SM:       stores[i],
			OnCommit: func(types.Timestamp, types.Command) { committed[i]++ },
		}
		reps[i] = core.New(cluster.Replicas[i], app, opts)
		cluster.Replicas[i].SetProtocol(reps[i])
	}
	cluster.Start()

	seq := uint64(0)
	submit := func(at int, key, val string) {
		seq++
		reps[at].Submit(types.Command{
			ID:      types.CommandID{Origin: types.ReplicaID(at), Seq: seq},
			Payload: kvstore.Put(key, []byte(val)),
		})
	}

	// Phase 1: healthy cluster.
	for k := 0; k < 10; k++ {
		k := k
		cluster.Eng.At(time.Duration(k*50)*time.Millisecond, func() {
			submit(k%n, fmt.Sprintf("phase1-%d", k), "v")
		})
	}
	cluster.Eng.RunUntil(1 * time.Second)
	fmt.Printf("t=1s    epoch=%d config=%v — %d commands committed everywhere\n",
		reps[0].Epoch(), reps[0].Config(), committed[0])

	// Phase 2: r4 crashes. The failure detector reconfigures.
	cluster.Eng.At(cluster.Eng.Now(), func() { cluster.Crash(4) })
	for k := 0; k < 10; k++ {
		k := k
		cluster.Eng.At(2*time.Second+time.Duration(k*50)*time.Millisecond, func() {
			submit(k%4, fmt.Sprintf("phase2-%d", k), "v")
		})
	}
	cluster.Eng.RunUntil(5 * time.Second)
	fmt.Printf("t=5s    r4 crashed -> epoch=%d config=%v — survivors committed %d commands\n",
		reps[0].Epoch(), reps[0].Config(), committed[0])

	// Phase 3: r4 recovers from its log and rejoins.
	cluster.Eng.At(cluster.Eng.Now(), func() {
		stores[4] = kvstore.New()
		app := &rsm.App{
			SM:       stores[4],
			OnCommit: func(types.Timestamp, types.Command) { committed[4]++ },
		}
		committed[4] = 0
		recovered := core.New(cluster.Replicas[4], app, core.Options{
			ClockTimeInterval: opts.ClockTimeInterval,
			SuspectTimeout:    opts.SuspectTimeout,
			ConsensusRetry:    opts.ConsensusRetry,
			Replay:            true, // Section V-B: replay the committed log prefix
		})
		reps[4] = recovered
		cluster.Replicas[4].SetProtocol(recovered)
		cluster.Restart(4)
		recovered.Start()
		recovered.Rejoin()
	})
	cluster.Eng.RunUntil(30 * time.Second)
	fmt.Printf("t=30s   r4 rejoined -> epoch=%d config=%v\n", reps[4].Epoch(), reps[4].Config())

	// Phase 4: the rejoined replica serves clients again.
	cluster.Eng.At(cluster.Eng.Now(), func() { submit(4, "phase4", "back") })
	cluster.Eng.RunUntil(cluster.Eng.Now() + 2*time.Second)

	for i := 0; i < n; i++ {
		v, _ := stores[i].Lookup("phase4")
		fmt.Printf("replica r%d: %2d commands executed, %d keys, phase4=%q\n",
			i, committed[i], stores[i].Len(), v)
	}
	return nil
}
