// Quickstart: a three-replica Clock-RSM cluster in one process.
//
// It wires three replicas over the in-process transport with a few
// milliseconds of emulated network latency, replicates a handful of
// key-value updates, and shows that every replica converged to the same
// state.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"clockrsm/internal/core"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/node"
	"clockrsm/internal/rsm"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 3
	// 2 ms one-way latency between replicas — a small LAN.
	hub := transport.NewHub(n, transport.HubOptions{
		Latency: wan.Uniform(n, 2*time.Millisecond),
	})
	defer hub.Close()

	spec := []types.ReplicaID{0, 1, 2}
	stores := make([]*kvstore.Store, n)
	nodes := make([]*node.Node, n)

	for i := 0; i < n; i++ {
		stores[i] = kvstore.New()
		nd := node.New(types.ReplicaID(i), spec, hub.Endpoint(types.ReplicaID(i)), node.Options{})
		app := &rsm.App{SM: stores[i]}
		nd.Bind(app) // execution results resolve Propose futures
		nd.SetProtocol(core.New(nd, app, core.Options{
			ClockTimeInterval: 5 * time.Millisecond,
		}))
		nodes[i] = nd
		if err := nd.Start(); err != nil {
			return err
		}
		defer nd.Stop()
	}

	// Issue a few updates, each at a different replica — Clock-RSM is
	// multi-leader, so no forwarding happens.
	ops := []struct {
		at      types.ReplicaID
		payload []byte
		desc    string
	}{
		{0, kvstore.Put("city", []byte("Lausanne")), `PUT city=Lausanne at r0`},
		{1, kvstore.Put("lake", []byte("Léman")), `PUT lake=Léman at r1`},
		{2, kvstore.Get("city"), `GET city at r2`},
		{1, kvstore.Put("city", []byte("Lugano")), `PUT city=Lugano at r1`},
		{0, kvstore.Get("city"), `GET city at r0`},
	}
	ctx := context.Background()
	for _, op := range ops {
		start := time.Now()
		fut, err := nodes[op.at].Propose(ctx, op.payload)
		if err != nil {
			return err
		}
		res, err := fut.Result()
		if err != nil {
			return err
		}
		fmt.Printf("%-26s -> %-10q committed in %v\n", op.desc, res.Value, time.Since(start).Round(time.Millisecond))
	}

	// All replicas hold the same state.
	time.Sleep(50 * time.Millisecond) // let trailing commits land
	for i, s := range stores {
		city, _ := s.Lookup("city")
		lake, _ := s.Lookup("lake")
		fmt.Printf("replica r%d state: city=%q lake=%q (%d keys)\n", i, city, lake, s.Len())
	}
	return nil
}
