// Client API: futures, pipelining, client-side batching, backpressure
// and cancellation.
//
// A three-replica Clock-RSM cluster runs in one process over the
// in-process transport. All commands enter through the first-class
// client API — Propose returns a *node.Future — and the example walks
// through each of its behaviors:
//
//  1. a single proposal awaited with Future.Result;
//
//  2. a pipeline of concurrent proposals sharing coalesced PREPARE
//     broadcasts via the SubmitBatch knob (paper Section VI-D);
//
//  3. cancellation: a context deadline abandons the wait (the command
//     may still commit, but at most once, and its result is dropped);
//
//  4. backpressure: a fail-fast node rejects proposals with
//     ErrOverloaded once MaxInFlight are in flight;
//
//  5. consistency-tiered reads served from the stable prefix — no
//     PREPARE broadcast: Linearizable (parks until the executed
//     watermark covers the read's capture time), Sequential (immediate,
//     monotonic through a Session token across replicas), and Stale
//     (immediate from the caller's goroutine, with a staleness bound).
//
// Run it:
//
//	go run ./examples/client
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"clockrsm/internal/core"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/node"
	"clockrsm/internal/rsm"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// cluster starts a three-replica cluster with the given client-API
// options on every node and returns the nodes plus a shutdown func.
func cluster(opts node.Options) ([]*node.Node, func(), error) {
	const n = 3
	hub := transport.NewHub(n, transport.HubOptions{
		Latency: wan.Uniform(n, 2*time.Millisecond),
	})
	spec := []types.ReplicaID{0, 1, 2}
	nodes := make([]*node.Node, n)
	for i := 0; i < n; i++ {
		nd := node.New(types.ReplicaID(i), spec, hub.Endpoint(types.ReplicaID(i)), opts)
		app := &rsm.App{SM: kvstore.New()}
		nd.Bind(app) // execution results resolve Propose futures
		nd.SetProtocol(core.New(nd, app, core.Options{ClockTimeInterval: 5 * time.Millisecond}))
		nodes[i] = nd
		if err := nd.Start(); err != nil {
			return nil, nil, err
		}
	}
	stop := func() {
		for _, nd := range nodes {
			nd.Stop()
		}
		hub.Close()
	}
	return nodes, stop, nil
}

func run() error {
	ctx := context.Background()

	// A node with client-side batching: up to 8 buffered proposals
	// flush into one event-loop turn and share one PREPARE broadcast.
	nodes, stop, err := cluster(node.Options{SubmitBatch: 8})
	if err != nil {
		return err
	}
	defer stop()

	// 1. One proposal, awaited.
	start := time.Now()
	fut, err := nodes[0].Propose(ctx, kvstore.Put("city", []byte("Lausanne")))
	if err != nil {
		return err
	}
	res, err := fut.Result()
	if err != nil {
		return err
	}
	fmt.Printf("PUT city=Lausanne           -> id %v, committed in %v\n",
		res.ID, time.Since(start).Round(time.Millisecond))

	// 2. A pipeline: 64 proposals in flight at once, across replicas.
	// No per-command synchronization — futures are collected and
	// awaited afterwards; the submit buffer batches each node's burst.
	start = time.Now()
	var wg sync.WaitGroup
	var committed int
	var mu sync.Mutex
	for k := 0; k < 64; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			at := types.ReplicaID(k % len(nodes))
			f, err := nodes[at].Propose(ctx, kvstore.Put(fmt.Sprintf("key-%d", k), []byte("v")))
			if err != nil {
				return
			}
			if _, err := f.Result(); err == nil {
				mu.Lock()
				committed++
				mu.Unlock()
			}
		}(k)
	}
	wg.Wait()
	fmt.Printf("pipeline of 64 proposals    -> %d committed in %v (batched PREPAREs)\n",
		committed, time.Since(start).Round(time.Millisecond))

	// 3. Cancellation: an expired context abandons the wait. The
	// command may still commit — at most once — but its result is
	// dropped; the future resolves node.ErrCanceled.
	cctx, cancel := context.WithTimeout(ctx, time.Nanosecond)
	defer cancel()
	fut, err = nodes[1].Propose(ctx, kvstore.Put("city", []byte("Lugano")))
	if err != nil {
		return err
	}
	if _, err := fut.Wait(cctx); errors.Is(err, node.ErrCanceled) {
		fmt.Println("canceled proposal           -> ErrCanceled (commit, if any, at most once)")
	} else {
		fmt.Println("canceled proposal           -> commit raced the cancellation")
	}

	// 5. Consistency-tiered reads, served from the local stable prefix
	// (no replication traffic at any tier).
	//
	// Linearizable: observes every write that completed before the read
	// began — the PUT above included — at any replica.
	start = time.Now()
	rres, err := nodes[2].Read(ctx, kvstore.Get("city"), node.Linearizable)
	if err != nil {
		return err
	}
	fmt.Printf("linearizable read at r2    -> city=%s in %v (watermark age %v)\n",
		rres.Value, time.Since(start).Round(time.Microsecond), rres.Age.Round(time.Microsecond))

	// Sequential: immediate, and monotonic across replicas through the
	// session — the second read (at another replica) waits, if needed,
	// until that replica has caught up to what the first read saw.
	var sess node.Session
	rres, err = nodes[0].Read(ctx, kvstore.Get("city"), node.Sequential(&sess))
	if err != nil {
		return err
	}
	fmt.Printf("sequential read at r0      -> city=%s (session token %d)\n", rres.Value, sess.Watermark())
	rres, err = nodes[1].Read(ctx, kvstore.Get("city"), node.Sequential(&sess))
	if err != nil {
		return err
	}
	fmt.Printf("sequential read at r1      -> city=%s (never older than r0's)\n", rres.Value)

	// Stale: served from the caller's goroutine without touching the
	// event loop; the result reports how stale it may be, and a bound
	// turns excessive staleness into node.ErrTooStale.
	rres, err = nodes[1].Read(ctx, kvstore.Get("city"), node.Stale(time.Minute))
	if err != nil {
		return err
	}
	fmt.Printf("stale read at r1           -> city=%s (≤ %v old)\n", rres.Value, rres.Age.Round(time.Microsecond))

	// 4. Backpressure, fail-fast flavor: a 1-slot window rejects the
	// second proposal instead of queueing unbounded work.
	small, stopSmall, err := cluster(node.Options{MaxInFlight: 1, FailFast: true})
	if err != nil {
		return err
	}
	defer stopSmall()
	first, err := small[0].Propose(ctx, kvstore.Put("k", []byte("v")))
	if err != nil {
		return err
	}
	_, err = small[0].Propose(ctx, kvstore.Put("k", []byte("v")))
	fmt.Printf("window full, fail-fast      -> %v\n", err)
	if _, err := first.Result(); err != nil {
		return err
	}

	// Stop resolves whatever is still unresolved with node.ErrStopped —
	// no waiter ever hangs across shutdown.
	return nil
}
