// Throughput: the paper's local-cluster study (Figure 8, Section VI-D).
//
// Five replicas run on the real runtime (one goroutine event loop each)
// over a zero-latency in-process transport with the binary codec
// enabled, saturated by closed-loop clients. The protocol-relative shape
// matches the paper: the Paxos leader is an advantage for small
// commands and the bottleneck for large ones.
//
//	go run ./examples/throughput
package main

import (
	"fmt"
	"log"
	"time"

	"clockrsm/internal/runner"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("Throughput on a local five-replica cluster (kop/s), 1s per cell")
	fmt.Printf("%-14s%10s%10s%10s\n", "protocol", "10B", "100B", "1000B")
	results, err := runner.Figure8([]int{10, 100, 1000}, time.Second)
	if err != nil {
		return err
	}
	for _, p := range runner.AllProtocols() {
		fmt.Printf("%-14s", p)
		for _, size := range []int{10, 100, 1000} {
			for _, r := range results {
				if r.Protocol == p && r.PayloadSize == size {
					fmt.Printf("%10.1f", r.OpsPerSec/1000)
				}
			}
		}
		fmt.Println()
	}
	fmt.Println("\ncompare with Figure 8: Paxos wins on small commands (leader batching")
	fmt.Println("economies), loses on large ones (leader serialization bottleneck)")
	return nil
}
