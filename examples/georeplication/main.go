// Geo-replication: the paper's headline scenario.
//
// Five replicas are placed at the EC2 data centers of Table III
// (California, Virginia, Ireland, Tokyo, Singapore) on the
// discrete-event simulator, each serving 40 closed-loop clients with
// 0–80 ms think time — the balanced workload of Figure 1. The example
// prints each protocol's mean and 95th-percentile commit latency per
// data center, reproducing the paper's comparison in a few seconds.
//
//	go run ./examples/georeplication
package main

import (
	"fmt"
	"log"
	"time"

	"clockrsm/internal/runner"
	"clockrsm/internal/wan"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	opts := runner.FigureOptions{
		ClientsPerReplica: 40,
		Duration:          30 * time.Second, // virtual seconds; real runtime ≪ 1s per protocol
		Seed:              1,
		Jitter:            time.Millisecond,
	}
	fmt.Println("Five replicas at CA, VA, IR, JP, SG — balanced workload, Paxos leader at VA")
	fmt.Println()
	bars, err := runner.Figure1(wan.VA, opts)
	if err != nil {
		return err
	}

	fmt.Printf("%-10s", "replica")
	for _, p := range runner.AllProtocols() {
		fmt.Printf("%24s", string(p))
	}
	fmt.Println()
	for _, site := range runner.FiveSites() {
		fmt.Printf("%-10v", site)
		for _, p := range runner.AllProtocols() {
			for _, b := range bars {
				if b.Site == site && b.Protocol == p {
					fmt.Printf("%16.0f / %3.0f ms", ms(b.Mean), ms(b.P95))
				}
			}
		}
		fmt.Println()
	}
	fmt.Println("\n(mean / 95th percentile commit latency; compare with Figure 1(b) of the paper)")

	// The paper's headline: Clock-RSM beats Paxos-bcast at non-leader
	// replicas because it avoids forwarding commands to a leader.
	var clockSum, paxosSum float64
	for _, b := range bars {
		switch b.Protocol {
		case runner.ClockRSM:
			clockSum += ms(b.Mean)
		case runner.PaxosBcast:
			paxosSum += ms(b.Mean)
		}
	}
	fmt.Printf("\naverage over all replicas: Clock-RSM %.0f ms vs Paxos-bcast %.0f ms\n",
		clockSum/5, paxosSum/5)
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
