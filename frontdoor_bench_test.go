// BenchmarkFrontDoor measures the production front door against the
// legacy line protocol: the same three-replica Clock-RSM cluster
// behind real TCP listeners, saturated by closed-loop writers.
//
// The comparison runs in two regimes. The WAN variants emulate the
// paper's geo-replicated setting (2 ms one-way replica links, so a
// commit costs a real round trip) — the regime the front door exists
// for, where a ping-pong protocol pays the commit latency once per
// command and a pipelined connection amortizes it across the window.
// The acceptance gate for BENCH_8.json reads from these: one pipelined
// RPC connection (window 32) must sustain at least the line protocol's
// throughput at equal client count (32 line connections) and at least
// 2x the line protocol's single-connection throughput. The local
// variants (instant links) are the CPU-bound datapoint on this
// container. CI runs the variants with -benchtime=1x as a smoke.
package clockrsm_test

import (
	"testing"
	"time"

	"clockrsm/internal/runner"
)

// wanDelay is the emulated one-way replica link latency of the WAN
// variants (4 ms RTT — the low end of the paper's intra-continent
// links, large against per-op CPU cost).
const wanDelay = 2 * time.Millisecond

func runFrontDoor(b *testing.B, cfg runner.FrontDoorConfig) {
	b.Helper()
	var ops float64
	for i := 0; i < b.N; i++ {
		cfg.Warmup = 300 * time.Millisecond
		cfg.Duration = 2 * time.Second
		res, err := runner.RunFrontDoor(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ops = res.OpsPerSec
	}
	b.ReportMetric(ops, "ops/s")
}

// BenchmarkRPCPipeline is the headline number: one connection, 32
// requests in flight, out-of-order completion, over the emulated WAN.
func BenchmarkRPCPipeline(b *testing.B) {
	runFrontDoor(b, runner.FrontDoorConfig{
		Mode: runner.FrontDoorRPC, Conns: 1, Window: 32, ReplicaDelay: wanDelay,
	})
}

// BenchmarkLineProtocol is the legacy single-connection baseline over
// the same WAN: one request in flight, strict write-then-read, so
// every command pays the full commit latency.
func BenchmarkLineProtocol(b *testing.B) {
	runFrontDoor(b, runner.FrontDoorConfig{
		Mode: runner.FrontDoorLine, Conns: 1, ReplicaDelay: wanDelay,
	})
}

// BenchmarkLineProtocolConns32 is the equal-client-count baseline: 32
// line connections carry the same concurrency one pipelined RPC
// connection does, at 32x the sockets.
func BenchmarkLineProtocolConns32(b *testing.B) {
	runFrontDoor(b, runner.FrontDoorConfig{
		Mode: runner.FrontDoorLine, Conns: 32, ReplicaDelay: wanDelay,
	})
}

// BenchmarkRPCPipelineLocal / BenchmarkLineProtocolLocal are the
// instant-link CPU-bound datapoints: with free commits and one visible
// CPU, per-op processing cost is all that differentiates the modes.
func BenchmarkRPCPipelineLocal(b *testing.B) {
	runFrontDoor(b, runner.FrontDoorConfig{Mode: runner.FrontDoorRPC, Conns: 1, Window: 32})
}

func BenchmarkLineProtocolLocal(b *testing.B) {
	runFrontDoor(b, runner.FrontDoorConfig{Mode: runner.FrontDoorLine, Conns: 1})
}

func BenchmarkLineProtocolConns32Local(b *testing.B) {
	runFrontDoor(b, runner.FrontDoorConfig{Mode: runner.FrontDoorLine, Conns: 32})
}
