// Command kvserver runs one replica of the Clock-RSM replicated
// key-value store over TCP, accepting line-oriented client commands:
//
//	PUT <key> <value>
//	GET <key>
//	DEL <key>
//
// Each command replies with "OK <previous-or-read-value>" once the
// update has committed (linearizably) at this replica.
//
// Example three-replica cluster on one machine:
//
//	kvserver -id 0 -peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 -client 127.0.0.1:7200
//	kvserver -id 1 -peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 -client 127.0.0.1:7201
//	kvserver -id 2 -peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 -client 127.0.0.1:7202
//
// With -groups G every replica hosts G independent Clock-RSM groups
// multiplexed over the same peer connections; the key space is
// partitioned by hash (internal/shard), each command is routed to its
// key's group, and groups commit in parallel. All replicas of one
// cluster must use the same -groups value. With -log, group g persists
// to <path>.g<g> (a single group keeps <path> itself).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"clockrsm/internal/core"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/node"
	"clockrsm/internal/rsm"
	"clockrsm/internal/shard"
	"clockrsm/internal/storage"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
)

func main() {
	id := flag.Int("id", 0, "replica ID (index into -peers)")
	peers := flag.String("peers", "", "comma-separated replica addresses, ordered by ID")
	clientAddr := flag.String("client", "127.0.0.1:7200", "client listen address")
	groups := flag.Int("groups", 1, "independent replication groups hosted by this node (key-sharded)")
	delta := flag.Duration("delta", 5*time.Millisecond, "CLOCKTIME broadcast interval Δ (0 disables)")
	suspect := flag.Duration("suspect", 0, "failure detector timeout (0 disables reconfiguration)")
	logPath := flag.String("log", "", "stable log file (empty = in-memory; group g uses <path>.g<g>)")
	flag.Parse()

	if err := run(*id, *peers, *clientAddr, *groups, *delta, *suspect, *logPath); err != nil {
		fmt.Fprintln(os.Stderr, "kvserver:", err)
		os.Exit(1)
	}
}

func run(id int, peerList, clientAddr string, groups int, delta, suspect time.Duration, logPath string) error {
	if groups < 1 {
		groups = 1
	}
	if groups > transport.MaxGroups {
		return fmt.Errorf("-groups %d exceeds the wire protocol's limit of %d", groups, transport.MaxGroups)
	}
	addrs := make(map[types.ReplicaID]string)
	var spec []types.ReplicaID
	for i, a := range strings.Split(peerList, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return fmt.Errorf("empty peer address at position %d", i)
		}
		addrs[types.ReplicaID(i)] = a
		spec = append(spec, types.ReplicaID(i))
	}
	if id < 0 || id >= len(spec) {
		return fmt.Errorf("id %d out of range for %d peers", id, len(spec))
	}

	logs := make([]storage.Log, groups)
	replay := make([]bool, groups)
	if logPath != "" {
		if err := checkGroupLayout(logPath, groups); err != nil {
			return err
		}
		for g := 0; g < groups; g++ {
			fl, err := storage.OpenFileLog(shard.LogPath(logPath, types.GroupID(g), groups), storage.FileLogOptions{Sync: true})
			if err != nil {
				return err
			}
			logs[g] = fl
			replay[g] = fl.Len() > 0
		}
	}

	tr := transport.NewTCP(types.ReplicaID(id), addrs, transport.TCPOptions{Groups: groups})
	host, err := node.NewHost(types.ReplicaID(id), spec, tr, node.HostOptions{
		Groups: groups,
		NewLog: func(g types.GroupID) storage.Log { return logs[g] },
	})
	if err != nil {
		return err
	}
	srv := &server{
		host:     host,
		router:   shard.NewRouter(groups),
		replicas: make([]*core.Replica, groups),
		pending:  make(map[groupCmd]chan []byte),
	}
	for g := 0; g < groups; g++ {
		gid := types.GroupID(g)
		app := &rsm.App{SM: kvstore.New(), OnReply: func(res types.Result) { srv.onReply(gid, res) }}
		nd := host.Group(gid)
		rep := core.New(nd, app, core.Options{
			ClockTimeInterval: delta,
			SuspectTimeout:    suspect,
			Replay:            replay[g],
		})
		nd.SetProtocol(rep)
		srv.replicas[g] = rep
	}
	if logPath != "" {
		// Record the group count only now that the logs opened and the
		// host was built: a start that fails earlier leaves no marker
		// blocking a corrected retry.
		if err := recordGroupLayout(logPath, groups); err != nil {
			return err
		}
	}
	if err := host.Start(); err != nil {
		return err
	}
	defer host.Stop()
	log.Printf("replica r%d up; groups=%d peers=%v client=%s", id, groups, peerList, clientAddr)

	ln, err := net.Listen("tcp", clientAddr)
	if err != nil {
		return err
	}
	defer ln.Close()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go srv.serve(conn)
	}
}

// checkGroupLayout refuses to start when the on-disk logs were written
// under a different -groups value: the group count determines both the
// log file names and the key→group hash, so reusing the logs would
// silently abandon (or misplace) committed data. The check is
// read-only; the count in force is persisted by recordGroupLayout once
// startup has gotten far enough that a marker cannot outlive a failed
// first start.
func checkGroupLayout(base string, groups int) error {
	marker := base + ".groups"
	if b, err := os.ReadFile(marker); err == nil {
		prev, perr := strconv.Atoi(strings.TrimSpace(string(b)))
		if perr != nil {
			return fmt.Errorf("corrupt group marker %s: %q", marker, b)
		}
		if prev != groups {
			return fmt.Errorf("logs at %s were written with -groups %d; starting with -groups %d would silently ignore committed data (migrate or remove the logs and %s first)", base, prev, groups, marker)
		}
		return nil
	} else if !os.IsNotExist(err) {
		return err
	}
	// No marker: logs from before group sharding are single-group.
	if groups > 1 {
		if st, err := os.Stat(base); err == nil && st.Size() > 0 {
			return fmt.Errorf("log %s exists from a single-group deployment; -groups %d would ignore it (migrate or remove it first)", base, groups)
		}
	}
	return nil
}

// recordGroupLayout persists the group count checkGroupLayout validates
// against on later starts.
func recordGroupLayout(base string, groups int) error {
	return os.WriteFile(base+".groups", []byte(strconv.Itoa(groups)+"\n"), 0o644)
}

// groupCmd keys an outstanding command: sequence numbers are allocated
// per group, so the command ID alone is not unique across groups.
type groupCmd struct {
	g   types.GroupID
	cid types.CommandID
}

// server bridges client connections to the replica's groups.
type server struct {
	host     *node.Host
	router   *shard.Router
	replicas []*core.Replica

	mu      sync.Mutex
	pending map[groupCmd]chan []byte
}

// onReply routes execution results back to waiting client connections.
// It runs on the owning group's event loop.
func (s *server) onReply(g types.GroupID, res types.Result) {
	key := groupCmd{g: g, cid: res.ID}
	s.mu.Lock()
	ch := s.pending[key]
	delete(s.pending, key)
	s.mu.Unlock()
	if ch != nil {
		ch <- res.Value
	}
}

// serve handles one client connection, routing each command to its
// key's group.
func (s *server) serve(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		payload, err := parse(line)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			w.Flush()
			continue
		}
		g := s.router.GroupForPayload(payload)
		nd := s.host.Group(g)
		var cid types.CommandID
		nd.Do(func() { cid = s.replicas[g].NextCommandID() })
		ch := make(chan []byte, 1)
		key := groupCmd{g: g, cid: cid}
		s.mu.Lock()
		s.pending[key] = ch
		s.mu.Unlock()
		nd.Submit(types.Command{ID: cid, Payload: payload})

		select {
		case v := <-ch:
			if v == nil {
				fmt.Fprintln(w, "OK (nil)")
			} else {
				fmt.Fprintf(w, "OK %s\n", v)
			}
		case <-time.After(30 * time.Second):
			s.mu.Lock()
			delete(s.pending, key)
			s.mu.Unlock()
			fmt.Fprintln(w, "ERR timeout")
		}
		w.Flush()
	}
}

// parse converts a client line into a state-machine payload.
func parse(line string) ([]byte, error) {
	parts := strings.SplitN(line, " ", 3)
	switch strings.ToUpper(parts[0]) {
	case "PUT":
		if len(parts) != 3 {
			return nil, fmt.Errorf("usage: PUT <key> <value>")
		}
		return kvstore.Put(parts[1], []byte(parts[2])), nil
	case "GET":
		if len(parts) != 2 {
			return nil, fmt.Errorf("usage: GET <key>")
		}
		return kvstore.Get(parts[1]), nil
	case "DEL":
		if len(parts) != 2 {
			return nil, fmt.Errorf("usage: DEL <key>")
		}
		return kvstore.Delete(parts[1]), nil
	default:
		return nil, fmt.Errorf("unknown command %q", parts[0])
	}
}
