// Command kvserver runs one replica of the Clock-RSM replicated
// key-value store over TCP, accepting line-oriented client commands:
//
//	PUT <key> <value>
//	GET <key>
//	DEL <key>
//
// Each command replies with "OK <previous-or-read-value>" once the
// update has committed (linearizably) at this replica. Commands enter
// the replication stack through the node.Host client API: one Propose
// per line, with the wait bounded by -client-timeout and canceled the
// moment the client connection closes.
//
// Reads additionally come in consistency-tiered verbs served from the
// replica's stable prefix — no replication traffic (node.Host.Read):
//
//	GETL <key>             linearizable: waits until the executed
//	                       watermark covers the read's capture time
//	GETS <key>             sequential: immediate, monotonic within the
//	                       connection (a per-connection session token)
//	GETA <key> [maxage]    stale: immediate, served if the watermark is
//	                       at most maxage old (a Go duration; omitted
//	                       or 0 serves unconditionally)
//
// Plain GET keeps replicating the read through the log — the strongest
// (and slowest) read, and the baseline the read path is measured
// against.
//
// The same port serves the operator API (see admin.go and kvctl):
//
//	MEMBERS              per-group configuration member sets
//	EPOCH                per-group configuration epochs
//	STATUS               per-group epoch/members/in-flight/latency snapshot
//	RECONF <id,id,...>   atomically reconfigure every group (grow/shrink)
//	ROUTES               routing table: version, slot counts, migrations
//	SPLIT <src> <dst>    live-move half of group src's key slots to dst
//	HEAL                 roll forward a split a crashed coordinator left
//
// Example three-replica cluster on one machine:
//
//	kvserver -id 0 -peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 -client 127.0.0.1:7200
//	kvserver -id 1 -peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 -client 127.0.0.1:7201
//	kvserver -id 2 -peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 -client 127.0.0.1:7202
//
// With -rpc <addr> the replica additionally serves the binary front
// door (internal/rpc) on that address: a multiplexed, pipelined
// request/response protocol with per-connection and global admission
// budgets (-rpc-conn-budget, -rpc-budget), spoken by the client package
// and `kvctl -rpc`. The line protocol stays available for debugging and
// legacy clients.
//
// With -groups G every replica hosts G independent Clock-RSM groups
// multiplexed over the same peer connections; the key space is
// partitioned into slots routed by a dynamic table (internal/reshard)
// that starts placement-identical to hash sharding, and groups commit
// in parallel. All replicas of one cluster must use the same -groups
// value; capacity beyond what the routing table uses is spare groups a
// live SPLIT can activate. With -log, group g persists to <path>.g<g>
// (a single group keeps <path> itself) and the routing table persists
// to <path>.routes.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"clockrsm/internal/chaos"
	"clockrsm/internal/clock"
	"clockrsm/internal/core"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/node"
	"clockrsm/internal/reshard"
	"clockrsm/internal/rpc"
	"clockrsm/internal/rsm"
	"clockrsm/internal/shard"
	"clockrsm/internal/storage"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
)

// serverConfig carries the parsed kvserver flags.
type serverConfig struct {
	id            int
	peers         string
	clientAddr    string
	groups        int
	delta         time.Duration
	suspect       time.Duration
	logPath       string
	clientTimeout time.Duration
	// fsync selects the WAL durability mode for every group's file log:
	// "always" (one fsync per append), "batch" (group commit: one fsync
	// per event-loop batch, released before the covering acks leave), or
	// "off" (no fsync). Ignored without -log.
	fsync string
	// checkpointEvery, when positive, snapshots the state machine every
	// that many committed commands and compacts the log through it.
	checkpointEvery int
	// rejoin controls the recovery handshake after a restart: "auto"
	// rejoins groups whose log replayed (the cluster may have
	// reconfigured this replica out while it was down), "always" rejoins
	// every group, "never" disables it.
	rejoin string
	// rpcAddr, when non-empty, serves the binary front-door protocol
	// (internal/rpc: multiplexed, pipelined; see the client package) on
	// that address, beside the line protocol.
	rpcAddr string
	// rpcBudget / rpcConnBudget are the front door's global and
	// per-connection admission budgets (0 = the rpc package defaults).
	rpcBudget     int
	rpcConnBudget int
	// chaosSeed, when non-zero, arms a deterministic fault-injection
	// schedule (internal/chaos) drawn from the seed: clock anomalies on
	// this replica's clock, drops/delays on its outgoing links, stalls on
	// its log. chaosSchedule instead replays an encoded schedule file (the
	// artifact format of chaos.EncodeSchedule) and takes precedence. Both
	// are for test and burn-in deployments only; injected-fault counters
	// appear under faults=(...) in STATUS.
	chaosSeed     int64
	chaosSchedule string
}

func main() {
	var cfg serverConfig
	flag.IntVar(&cfg.id, "id", 0, "replica ID (index into -peers)")
	flag.StringVar(&cfg.peers, "peers", "", "comma-separated replica addresses, ordered by ID")
	flag.StringVar(&cfg.clientAddr, "client", "127.0.0.1:7200", "client listen address")
	flag.IntVar(&cfg.groups, "groups", 1, "independent replication groups hosted by this node (key-sharded)")
	flag.DurationVar(&cfg.delta, "delta", 5*time.Millisecond, "CLOCKTIME broadcast interval Δ (0 disables)")
	flag.DurationVar(&cfg.suspect, "suspect", 0, "failure detector timeout (0 disables reconfiguration)")
	flag.StringVar(&cfg.logPath, "log", "", "stable log file (empty = in-memory; group g uses <path>.g<g>)")
	flag.DurationVar(&cfg.clientTimeout, "client-timeout", 30*time.Second, "per-command commit wait bound for client connections (0 disables)")
	flag.StringVar(&cfg.fsync, "fsync", "always", "WAL fsync mode with -log: always, batch (group commit), or off")
	flag.IntVar(&cfg.checkpointEvery, "checkpoint", 0, "snapshot + compact the log every N committed commands (0 disables)")
	flag.StringVar(&cfg.rejoin, "rejoin", "auto", "rejoin the configuration after restart: auto (replayed groups), always, or never")
	flag.StringVar(&cfg.rpcAddr, "rpc", "", "binary RPC listen address (empty disables the front door)")
	flag.IntVar(&cfg.rpcBudget, "rpc-budget", 0, "front-door global in-flight admission budget (0 = default)")
	flag.IntVar(&cfg.rpcConnBudget, "rpc-conn-budget", 0, "front-door per-connection in-flight admission budget (0 = default)")
	flag.Int64Var(&cfg.chaosSeed, "chaos-seed", 0, "arm a deterministic random fault schedule from this seed (0 disables; test deployments only)")
	flag.StringVar(&cfg.chaosSchedule, "chaos-schedule", "", "arm the encoded fault schedule in this file (chaos replay artifact; overrides -chaos-seed)")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "kvserver:", err)
		os.Exit(1)
	}
}

func run(cfg serverConfig) error {
	id, groups := cfg.id, cfg.groups
	peerList, clientAddr, logPath := cfg.peers, cfg.clientAddr, cfg.logPath
	if groups < 1 {
		groups = 1
	}
	if groups > transport.MaxGroups {
		return fmt.Errorf("-groups %d exceeds the wire protocol's limit of %d", groups, transport.MaxGroups)
	}
	addrs := make(map[types.ReplicaID]string)
	var spec []types.ReplicaID
	for i, a := range strings.Split(peerList, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return fmt.Errorf("empty peer address at position %d", i)
		}
		addrs[types.ReplicaID(i)] = a
		spec = append(spec, types.ReplicaID(i))
	}
	if id < 0 || id >= len(spec) {
		return fmt.Errorf("id %d out of range for %d peers", id, len(spec))
	}

	mode, err := storage.ParseSyncMode(cfg.fsync)
	if err != nil {
		return err
	}
	// The chaos engine, when armed, injects this replica's share of the
	// fault schedule at three layers: the clock source, the outgoing
	// links, and the stable log. Replay artifacts beat seeds so a failing
	// seeded run's shipped schedule reproduces bit-for-bit.
	var eng *chaos.Engine
	switch {
	case cfg.chaosSchedule != "":
		b, err := os.ReadFile(cfg.chaosSchedule)
		if err != nil {
			return err
		}
		sched, err := chaos.DecodeSchedule(b)
		if err != nil {
			return fmt.Errorf("chaos schedule %s: %w", cfg.chaosSchedule, err)
		}
		eng = chaos.New(sched)
	case cfg.chaosSeed != 0:
		eng = chaos.New(chaos.Random(cfg.chaosSeed, chaos.Profile{
			Replicas:    len(spec),
			Span:        5 * time.Second,
			ClockFaults: 2,
			LinkFaults:  2,
			DiskFaults:  1,
		}))
	}
	switch cfg.rejoin {
	case "auto", "always", "never":
	default:
		return fmt.Errorf("bad -rejoin %q (want auto, always, or never)", cfg.rejoin)
	}

	// The routing table, when persisted from a previous run, is the
	// source of truth for key placement; -groups is just hosting
	// capacity. A nil table (fresh boot, or no -log) routes by the
	// legacy layout, which is placement-identical to hash-mod-G.
	var table *reshard.Table
	var routesPath string
	if logPath != "" {
		routesPath = logPath + ".routes"
		var err error
		if table, err = reshard.Load(routesPath); err != nil {
			return fmt.Errorf("routing table %s: %w", routesPath, err)
		}
	}

	logs := make([]storage.Log, groups)
	replay := make([]bool, groups)
	if logPath != "" {
		if err := checkGroupLayout(logPath, groups, table); err != nil {
			return err
		}
		for g := 0; g < groups; g++ {
			fl, err := storage.OpenFileLog(shard.LogPath(logPath, types.GroupID(g), groups), storage.FileLogOptions{Mode: mode})
			if err != nil {
				return err
			}
			logs[g] = fl
			if eng != nil {
				logs[g] = eng.Log(types.ReplicaID(id), fl)
			}
			// A restart is any log with history: live entries, or a
			// checkpoint that compacted them all (Len alone would mistake a
			// fully-compacted log for a fresh boot and skip the rejoin).
			_, hasCP := fl.LastCheckpoint()
			replay[g] = fl.Len() > 0 || hasCP
		}
	}

	var tr transport.Transport = transport.NewTCP(types.ReplicaID(id), addrs, transport.TCPOptions{Groups: groups})
	hostOpts := node.HostOptions{
		Groups:     groups,
		NewLog:     func(g types.GroupID) storage.Log { return logs[g] },
		Table:      table,
		RoutesPath: routesPath,
	}
	if eng != nil {
		tr = eng.Transport(tr)
		hostOpts.Clock = clock.NewMonotonic(eng.Clock(types.ReplicaID(id), clock.System{}))
		hostOpts.FaultStats = func() map[string]uint64 { return eng.ReplicaCounts(types.ReplicaID(id)) }
	}
	host, err := node.NewHost(types.ReplicaID(id), spec, tr, hostOpts)
	if err != nil {
		return err
	}
	srv := &server{host: host, timeout: cfg.clientTimeout}
	for g := 0; g < groups; g++ {
		gid := types.GroupID(g)
		app := &rsm.App{SM: kvstore.New()}
		nd := host.Group(gid)
		// Bind through the host so each group's state machine gets the
		// resharding wrapper: replicated fence/install commands route and
		// fence keys, and execution results resolve Propose futures.
		host.Bind(gid, app)
		nd.SetProtocol(core.New(nd, app, core.Options{
			ClockTimeInterval: cfg.delta,
			SuspectTimeout:    cfg.suspect,
			Replay:            replay[g],
			CheckpointEvery:   cfg.checkpointEvery,
		}))
	}
	if logPath != "" {
		// Record the group count only now that the logs opened and the
		// host was built: a start that fails earlier leaves no marker
		// blocking a corrected retry.
		if err := recordGroupLayout(logPath, groups); err != nil {
			return err
		}
	}
	if err := host.Start(); err != nil {
		return err
	}
	defer host.Stop()
	// A restarted replica may have been reconfigured out while it was
	// down; rejoin forces a reconfiguration that re-admits it and pulls
	// any missed history via checkpoint + tail state transfer.
	for g := 0; g < groups; g++ {
		if cfg.rejoin == "always" || (cfg.rejoin == "auto" && replay[g]) {
			if err := host.Group(types.GroupID(g)).Rejoin(); err != nil {
				return fmt.Errorf("rejoin group %d: %w", g, err)
			}
		}
	}
	log.Printf("replica r%d up; groups=%d peers=%v client=%s fsync=%s", id, groups, peerList, clientAddr, mode)
	if eng != nil {
		// Arm only once the replica is serving, so the schedule's t=0 is
		// "cluster up", matching how the chaos matrix replays schedules.
		eng.Arm()
		log.Printf("replica r%d CHAOS ARMED (seed=%d schedule=%q) — fault injection active, test deployments only",
			id, cfg.chaosSeed, cfg.chaosSchedule)
	}

	// Binary front door (internal/rpc): multiplexed, pipelined RPC with
	// admission control, beside the legacy line protocol. The operator
	// verbs are shared — VAdmin routes through the same admin handler.
	if cfg.rpcAddr != "" {
		rpcSrv := rpc.NewServer(host, rpc.ServerOptions{
			MaxInFlight:  cfg.rpcBudget,
			ConnInFlight: cfg.rpcConnBudget,
			Timeout:      cfg.clientTimeout,
			Admin:        srv.admin,
		})
		srv.rpc = rpcSrv
		defer rpcSrv.Close()
		rln, err := net.Listen("tcp", cfg.rpcAddr)
		if err != nil {
			return err
		}
		defer rln.Close()
		go rpcSrv.Serve(rln)
		log.Printf("replica r%d front door on %s", id, rln.Addr())
	}

	ln, err := net.Listen("tcp", clientAddr)
	if err != nil {
		return err
	}
	defer ln.Close()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go srv.serve(conn)
	}
}

// GroupLayoutError is the typed refusal for a -groups value the
// on-disk state cannot support. It names the marker file the previous
// count was read from and says what would make the new count legal —
// since live resharding exists, the answer is no longer "never": a
// restart may always grow capacity (add spares) when a persisted
// routing table carries the placement, and shrinking goes through
// group splits/merges (`kvctl split`, see the README's Resharding
// walkthrough), never through editing -groups.
type GroupLayoutError struct {
	// Marker is the layout marker path (<log>.groups), Routes the
	// routing-table path (<log>.routes) whose presence legitimizes
	// grown counts.
	Marker, Routes string
	// Prev is the recorded count (0: none, single-group era log), Want
	// the count this start asked for.
	Prev, Want int
	// Reason says why Want is not acceptable.
	Reason string
}

func (e *GroupLayoutError) Error() string {
	return fmt.Sprintf("group layout: -groups %d rejected (%s recorded %d): %s",
		e.Want, e.Marker, e.Prev, e.Reason)
}

// checkGroupLayout refuses to start when the on-disk logs cannot be
// served under the requested -groups value. Before resharding the rule
// was equality: the count determined the key→group hash, so any change
// silently misplaced committed data. With a persisted routing table
// (<log>.routes) placement lives in the table — slots are fixed at
// genesis — so a grown count only adds spare groups and is accepted;
// what stays illegal is shrinking below the groups the table (or the
// marker) routes to, and growing a deployment that predates the table.
// The check is read-only; recordGroupLayout persists the count in force
// once startup has gotten far enough that a marker cannot outlive a
// failed first start.
func checkGroupLayout(base string, groups int, table *reshard.Table) error {
	marker := base + ".groups"
	routes := base + ".routes"
	fail := func(prev int, reason string) error {
		return &GroupLayoutError{Marker: marker, Routes: routes, Prev: prev, Want: groups, Reason: reason}
	}
	if b, err := os.ReadFile(marker); err == nil {
		prev, perr := strconv.Atoi(strings.TrimSpace(string(b)))
		if perr != nil {
			return fmt.Errorf("corrupt group marker %s: %q", marker, b)
		}
		switch {
		case prev == groups:
			return nil
		case table != nil && groups > prev && prev > 1:
			// The routing table owns placement and every group it routes
			// to keeps its log file; extra capacity is spares for the next
			// split. (NewHost separately refuses a table that routes to
			// more groups than hosted.)
			return nil
		case table != nil && groups < prev:
			return fail(prev, fmt.Sprintf("shrinking hosted capacity would orphan group logs; drain groups with splits/merges first (routing table %s routes %d groups)", routes, table.Groups()))
		case table != nil && prev <= 1:
			return fail(prev, "single-group log naming differs; migrate the log to <path>.g0 and restart")
		default:
			return fail(prev, fmt.Sprintf("no routing table at %s to carry placement across the change; grow groups via live resharding (start with spare capacity, then `kvctl split`), or remove the logs and %s", routes, marker))
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	// No marker: logs from before group sharding are single-group.
	if groups > 1 {
		if st, err := os.Stat(base); err == nil && st.Size() > 0 {
			return fail(0, fmt.Sprintf("log %s predates group sharding (single-group); migrate it to <path>.g0 or remove it", base))
		}
	}
	return nil
}

// recordGroupLayout persists the group count checkGroupLayout validates
// against on later starts.
func recordGroupLayout(base string, groups int) error {
	return os.WriteFile(base+".groups", []byte(strconv.Itoa(groups)+"\n"), 0o644)
}

// maxLineBytes caps one line-protocol command line (verb + key +
// value). bufio.Scanner's default 64 KiB cap silently killed the
// connection on large PUTs; this raises the cap and makes crossing it
// a reported protocol error (errLineTooLong).
const maxLineBytes = 1 << 20

// errLineTooLong is the typed reply for a command line over
// maxLineBytes.
var errLineTooLong = fmt.Errorf("line too long (max %d bytes)", maxLineBytes)

// server bridges client connections to the replica's groups. All
// submission plumbing — ID allocation, completion routing, timeouts —
// lives in the node client API; the server just proposes and waits.
type server struct {
	host    *node.Host
	timeout time.Duration
	// rpc is the binary front-door server when -rpc is set (nil
	// otherwise); STATUS surfaces its admission counters.
	rpc *rpc.Server
}

// serve handles one client connection: each line becomes one key-routed
// Propose through the host. The wait for a commit is bounded by the
// -client-timeout deadline and canceled outright when the connection
// closes, so an abandoned client never strands a waiter.
func (s *server) serve(conn net.Conn) {
	defer conn.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The connection's read session: GETS reads through it are monotonic
	// across every replica this client might talk to via proxies; here it
	// scopes monotonicity to the connection.
	var sess node.Session
	// A dedicated reader detects connection close (EOF or error) even
	// while a command is in flight; canceling ctx then releases the
	// Wait below. The scanner's token cap is raised from bufio's 64 KiB
	// default to maxLineBytes, and hitting it is a typed, reported error
	// instead of a silent connection drop.
	type lineEvent struct {
		line string
		err  error
	}
	lines := make(chan lineEvent)
	go func() {
		defer cancel()
		defer close(lines)
		sc := bufio.NewScanner(conn)
		sc.Buffer(make([]byte, 0, 64<<10), maxLineBytes)
		for sc.Scan() {
			select {
			case lines <- lineEvent{line: sc.Text()}:
			case <-ctx.Done():
				return
			}
		}
		if err := sc.Err(); errors.Is(err, bufio.ErrTooLong) {
			select {
			case lines <- lineEvent{err: errLineTooLong}:
			case <-ctx.Done():
			}
		}
	}()
	w := bufio.NewWriter(conn)
	for ev := range lines {
		if ev.err != nil {
			// The stream past an oversized line cannot be re-framed; report
			// the typed error and drop the connection.
			fmt.Fprintf(w, "ERR %v\n", ev.err)
			w.Flush()
			return
		}
		line := strings.TrimSpace(ev.line)
		if line == "" {
			continue
		}
		// Admin commands (MEMBERS/EPOCH/STATUS/RECONF) are served on the
		// same port, off the replication path.
		if resp, ok := s.admin(ctx, line); ok {
			fmt.Fprintln(w, resp)
			w.Flush()
			continue
		}
		// Consistency-tiered reads (GETL/GETS/GETA) serve from the local
		// stable prefix, off the replication path too.
		if query, lvl, isRead, err := parseRead(line, &sess); isRead {
			s.serveRead(ctx, w, query, lvl, err)
			continue
		}
		payload, err := parse(line)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			w.Flush()
			continue
		}
		cmdCtx, done := ctx, func() {}
		if s.timeout > 0 {
			cmdCtx, done = context.WithTimeout(ctx, s.timeout)
		}
		// ExecutePayload routes by the live table and retries through a
		// split's fence window, so a resharding in progress is invisible
		// here unless it outlives the timeout.
		res, err := s.host.ExecutePayload(cmdCtx, payload)
		switch {
		case err == nil:
			if res.Value == nil {
				fmt.Fprintln(w, "OK (nil)")
			} else {
				fmt.Fprintf(w, "OK %s\n", res.Value)
			}
		case ctx.Err() != nil:
			// Connection closed while waiting: nothing left to reply to.
			done()
			return
		case errors.Is(err, node.ErrWrongGroup):
			fmt.Fprintln(w, "ERR key mid-migration (split in progress; retry)")
		case errors.Is(cmdCtx.Err(), context.DeadlineExceeded):
			fmt.Fprintln(w, "ERR timeout")
		case errors.Is(err, node.ErrStopped):
			fmt.Fprintln(w, "ERR stopped")
		default:
			fmt.Fprintf(w, "ERR %v\n", err)
		}
		done()
		w.Flush()
	}
}

// serveRead answers one tiered read line. The wait (a Linearizable or
// session-catch-up park) is bounded by -client-timeout; ErrTooStale and
// ErrNotInConfig map to client-visible errors so the client can retry
// at another replica or a stronger level.
func (s *server) serveRead(ctx context.Context, w *bufio.Writer, query []byte, lvl node.Level, perr error) {
	defer w.Flush()
	if perr != nil {
		fmt.Fprintf(w, "ERR %v\n", perr)
		return
	}
	cmdCtx, done := ctx, func() {}
	if s.timeout > 0 {
		cmdCtx, done = context.WithTimeout(ctx, s.timeout)
	}
	defer done()
	res, err := s.host.Read(cmdCtx, query, lvl)
	switch {
	case err == nil:
		if res.Value == nil {
			fmt.Fprintln(w, "OK (nil)")
		} else {
			fmt.Fprintf(w, "OK %s\n", res.Value)
		}
	case errors.Is(err, node.ErrTooStale):
		fmt.Fprintln(w, "ERR too stale")
	case errors.Is(err, node.ErrNotInConfig):
		fmt.Fprintln(w, "ERR not in configuration (read elsewhere)")
	case errors.Is(err, node.ErrWrongGroup):
		fmt.Fprintln(w, "ERR key mid-migration (split in progress; retry)")
	case errors.Is(cmdCtx.Err(), context.DeadlineExceeded):
		fmt.Fprintln(w, "ERR timeout")
	case errors.Is(err, node.ErrStopped):
		fmt.Fprintln(w, "ERR stopped")
	default:
		fmt.Fprintf(w, "ERR %v\n", err)
	}
}

// parseRead recognizes the consistency-tiered read verbs. It reports
// whether the line was a read line; the error covers malformed read
// lines only (other verbs fall through to parse).
func parseRead(line string, sess *node.Session) (query []byte, lvl node.Level, isRead bool, err error) {
	parts := strings.Fields(line)
	if len(parts) == 0 {
		return nil, lvl, false, nil
	}
	switch strings.ToUpper(parts[0]) {
	case "GETL":
		if len(parts) != 2 {
			return nil, lvl, true, fmt.Errorf("usage: GETL <key>")
		}
		return kvstore.Get(parts[1]), node.Linearizable, true, nil
	case "GETS":
		if len(parts) != 2 {
			return nil, lvl, true, fmt.Errorf("usage: GETS <key>")
		}
		return kvstore.Get(parts[1]), node.Sequential(sess), true, nil
	case "GETA":
		if len(parts) != 2 && len(parts) != 3 {
			return nil, lvl, true, fmt.Errorf("usage: GETA <key> [maxage]")
		}
		var maxAge time.Duration
		if len(parts) == 3 {
			maxAge, err = time.ParseDuration(parts[2])
			if err != nil {
				return nil, lvl, true, fmt.Errorf("bad maxage %q: %v", parts[2], err)
			}
		}
		return kvstore.Get(parts[1]), node.Stale(maxAge), true, nil
	}
	return nil, lvl, false, nil
}

// parse converts a client line into a state-machine payload.
func parse(line string) ([]byte, error) {
	parts := strings.SplitN(line, " ", 3)
	switch strings.ToUpper(parts[0]) {
	case "PUT":
		if len(parts) != 3 {
			return nil, fmt.Errorf("usage: PUT <key> <value>")
		}
		return kvstore.Put(parts[1], []byte(parts[2])), nil
	case "GET":
		if len(parts) != 2 {
			return nil, fmt.Errorf("usage: GET <key>")
		}
		return kvstore.Get(parts[1]), nil
	case "DEL":
		if len(parts) != 2 {
			return nil, fmt.Errorf("usage: DEL <key>")
		}
		return kvstore.Delete(parts[1]), nil
	default:
		return nil, fmt.Errorf("unknown command %q", parts[0])
	}
}
