// Command kvserver runs one replica of the Clock-RSM replicated
// key-value store over TCP, accepting line-oriented client commands:
//
//	PUT <key> <value>
//	GET <key>
//	DEL <key>
//
// Each command replies with "OK <previous-or-read-value>" once the
// update has committed (linearizably) at this replica.
//
// Example three-replica cluster on one machine:
//
//	kvserver -id 0 -peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 -client 127.0.0.1:7200
//	kvserver -id 1 -peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 -client 127.0.0.1:7201
//	kvserver -id 2 -peers 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 -client 127.0.0.1:7202
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"clockrsm/internal/core"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/node"
	"clockrsm/internal/rsm"
	"clockrsm/internal/storage"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
)

func main() {
	id := flag.Int("id", 0, "replica ID (index into -peers)")
	peers := flag.String("peers", "", "comma-separated replica addresses, ordered by ID")
	clientAddr := flag.String("client", "127.0.0.1:7200", "client listen address")
	delta := flag.Duration("delta", 5*time.Millisecond, "CLOCKTIME broadcast interval Δ (0 disables)")
	suspect := flag.Duration("suspect", 0, "failure detector timeout (0 disables reconfiguration)")
	logPath := flag.String("log", "", "stable log file (empty = in-memory)")
	flag.Parse()

	if err := run(*id, *peers, *clientAddr, *delta, *suspect, *logPath); err != nil {
		fmt.Fprintln(os.Stderr, "kvserver:", err)
		os.Exit(1)
	}
}

func run(id int, peerList, clientAddr string, delta, suspect time.Duration, logPath string) error {
	addrs := make(map[types.ReplicaID]string)
	var spec []types.ReplicaID
	for i, a := range strings.Split(peerList, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return fmt.Errorf("empty peer address at position %d", i)
		}
		addrs[types.ReplicaID(i)] = a
		spec = append(spec, types.ReplicaID(i))
	}
	if id < 0 || id >= len(spec) {
		return fmt.Errorf("id %d out of range for %d peers", id, len(spec))
	}

	var lg storage.Log
	replay := false
	if logPath != "" {
		fl, err := storage.OpenFileLog(logPath, storage.FileLogOptions{Sync: true})
		if err != nil {
			return err
		}
		lg = fl
		replay = fl.Len() > 0
	}

	store := kvstore.New()
	srv := &server{pending: make(map[types.CommandID]chan []byte)}
	tr := transport.NewTCP(types.ReplicaID(id), addrs, transport.TCPOptions{})
	nd := node.New(types.ReplicaID(id), spec, tr, node.Options{Log: lg})
	app := &rsm.App{SM: store, OnReply: srv.onReply}
	rep := core.New(nd, app, core.Options{
		ClockTimeInterval: delta,
		SuspectTimeout:    suspect,
		Replay:            replay,
	})
	nd.SetProtocol(rep)
	srv.node = nd
	srv.replica = rep
	if err := nd.Start(); err != nil {
		return err
	}
	defer nd.Stop()
	log.Printf("replica r%d up; peers=%v client=%s", id, peerList, clientAddr)

	ln, err := net.Listen("tcp", clientAddr)
	if err != nil {
		return err
	}
	defer ln.Close()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go srv.serve(conn)
	}
}

// server bridges client connections to the replica.
type server struct {
	node    *node.Node
	replica *core.Replica

	mu      sync.Mutex
	pending map[types.CommandID]chan []byte
}

// onReply routes execution results back to waiting client connections.
// It runs on the node's event loop.
func (s *server) onReply(res types.Result) {
	s.mu.Lock()
	ch := s.pending[res.ID]
	delete(s.pending, res.ID)
	s.mu.Unlock()
	if ch != nil {
		ch <- res.Value
	}
}

// serve handles one client connection.
func (s *server) serve(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		payload, err := parse(line)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			w.Flush()
			continue
		}
		var cid types.CommandID
		s.node.Do(func() { cid = s.replica.NextCommandID() })
		ch := make(chan []byte, 1)
		s.mu.Lock()
		s.pending[cid] = ch
		s.mu.Unlock()
		s.node.Submit(types.Command{ID: cid, Payload: payload})

		select {
		case v := <-ch:
			if v == nil {
				fmt.Fprintln(w, "OK (nil)")
			} else {
				fmt.Fprintf(w, "OK %s\n", v)
			}
		case <-time.After(30 * time.Second):
			s.mu.Lock()
			delete(s.pending, cid)
			s.mu.Unlock()
			fmt.Fprintln(w, "ERR timeout")
		}
		w.Flush()
	}
}

// parse converts a client line into a state-machine payload.
func parse(line string) ([]byte, error) {
	parts := strings.SplitN(line, " ", 3)
	switch strings.ToUpper(parts[0]) {
	case "PUT":
		if len(parts) != 3 {
			return nil, fmt.Errorf("usage: PUT <key> <value>")
		}
		return kvstore.Put(parts[1], []byte(parts[2])), nil
	case "GET":
		if len(parts) != 2 {
			return nil, fmt.Errorf("usage: GET <key>")
		}
		return kvstore.Get(parts[1]), nil
	case "DEL":
		if len(parts) != 2 {
			return nil, fmt.Errorf("usage: DEL <key>")
		}
		return kvstore.Delete(parts[1]), nil
	default:
		return nil, fmt.Errorf("unknown command %q", parts[0])
	}
}
