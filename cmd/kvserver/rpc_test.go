package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"clockrsm/client"
)

// TestKVServerRPCFrontDoor runs a real 3-replica kvserver cluster with
// the binary front door enabled and drives it through the client
// package: data verbs, tiered reads, admin verbs, and the rpc counters
// in STATUS.
func TestKVServerRPCFrontDoor(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real TCP cluster")
	}
	peerAddrs := freePorts(t, 3)
	clientAddrs := freePorts(t, 3)
	rpcAddrs := freePorts(t, 3)
	peers := strings.Join(peerAddrs, ",")
	for i := 0; i < 3; i++ {
		i := i
		go func() {
			_ = run(serverConfig{
				id: i, peers: peers, clientAddr: clientAddrs[i], groups: 2,
				delta: 5 * time.Millisecond, clientTimeout: 30 * time.Second,
				fsync: "always", rejoin: "auto", rpcAddr: rpcAddrs[i],
			})
		}()
	}

	c, err := client.Dial(client.Config{Addrs: rpcAddrs, Window: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// The client retries the dial internally until a replica is up.
	if _, err := c.Put(ctx, "city", []byte("Lausanne")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if v, err := c.Get(ctx, "city"); err != nil || string(v) != "Lausanne" {
		t.Fatalf("Get: %q, %v", v, err)
	}
	if v, err := c.GetLin(ctx, "city"); err != nil || string(v) != "Lausanne" {
		t.Fatalf("GetLin: %q, %v", v, err)
	}
	if v, err := c.GetSeq(ctx, "city"); err != nil || string(v) != "Lausanne" {
		t.Fatalf("GetSeq: %q, %v", v, err)
	}
	if c.Session() == 0 {
		t.Fatal("session token did not advance")
	}
	// Sharded routing is transparent: spread keys over both groups.
	for i := 0; i < 8; i++ {
		if _, err := c.Put(ctx, fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put k%d: %v", i, err)
		}
	}
	for i := 0; i < 8; i++ {
		if v, err := c.Get(ctx, fmt.Sprintf("k%d", i)); err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get k%d: %q, %v", i, v, err)
		}
	}
	// Admin verbs share the operator handler with the line protocol, and
	// STATUS carries the front door's admission counters.
	status, err := c.Admin(ctx, "STATUS")
	if err != nil {
		t.Fatalf("Admin STATUS: %v", err)
	}
	// The Admin call travels over our own front-door connection, so the
	// serving replica's counters must show it live, with work accepted.
	if !strings.Contains(status, "rpc=(conns=1 ") || !strings.Contains(status, "shed=0") {
		t.Fatalf("STATUS lacks live rpc counters: %q", status)
	}
	if !strings.Contains(status, "accepted=") || strings.Contains(status, "accepted=0 ") {
		t.Fatalf("STATUS shows no accepted rpc requests: %q", status)
	}
	if resp, err := c.Admin(ctx, "MEMBERS"); err != nil || !strings.HasPrefix(resp, "OK g0=r0,r1,r2") {
		t.Fatalf("Admin MEMBERS: %q, %v", resp, err)
	}

	// The legacy line protocol serves the same data beside the front
	// door, and its STATUS shows the RPC connection we hold open.
	conn, err := net.Dial("tcp", clientAddrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	fmt.Fprintln(conn, "GET city")
	if resp, _ := r.ReadString('\n'); strings.TrimSpace(resp) != "OK Lausanne" {
		t.Fatalf("line GET after rpc PUT: %q", resp)
	}
	// The line protocol's STATUS carries the same front-door counter
	// block (the client may be connected to any of the three replicas,
	// so only the block's presence is asserted here).
	fmt.Fprintln(conn, "STATUS")
	if resp, _ := r.ReadString('\n'); !strings.Contains(resp, "rpc=(conns=") {
		t.Fatalf("line STATUS lacks rpc counters: %q", strings.TrimSpace(resp))
	}
}

// TestKVServerLineLimits pins the scanner fix: a PUT above bufio's old
// 64 KiB default token cap now works, and a line above maxLineBytes
// draws the typed "line too long" error instead of a silent kill.
func TestKVServerLineLimits(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real TCP cluster")
	}
	peerAddrs := freePorts(t, 3)
	clientAddrs := freePorts(t, 3)
	peers := strings.Join(peerAddrs, ",")
	for i := 0; i < 3; i++ {
		i := i
		go func() {
			_ = run(serverConfig{
				id: i, peers: peers, clientAddr: clientAddrs[i], groups: 1,
				delta: 5 * time.Millisecond, clientTimeout: 30 * time.Second,
				fsync: "always", rejoin: "auto",
			})
		}()
	}
	dial := func(addr string) net.Conn {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			c, err := net.Dial("tcp", addr)
			if err == nil {
				return c
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("server at %s never came up", addr)
		return nil
	}

	conn := dial(clientAddrs[0])
	defer conn.Close()
	r := bufio.NewReader(conn)

	// 200 KiB value: over the old default cap, under maxLineBytes.
	big := bytes.Repeat([]byte("x"), 200<<10)
	if _, err := fmt.Fprintf(conn, "PUT big %s\n", big); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	if resp, err := r.ReadString('\n'); err != nil || strings.TrimSpace(resp) != "OK (nil)" {
		t.Fatalf("big PUT: %q, %v", strings.TrimSpace(resp), err)
	}
	if _, err := fmt.Fprintln(conn, "GET big"); err != nil {
		t.Fatal(err)
	}
	if resp, err := r.ReadString('\n'); err != nil || len(resp) != len("OK \n")+len(big) {
		t.Fatalf("big GET: %d bytes, %v", len(resp), err)
	}

	// Over maxLineBytes: typed error, then the connection closes (the
	// stream cannot be re-framed past an oversized line).
	conn2 := dial(clientAddrs[1])
	defer conn2.Close()
	r2 := bufio.NewReader(conn2)
	huge := bytes.Repeat([]byte("y"), maxLineBytes+1024)
	if _, err := fmt.Fprintf(conn2, "PUT huge %s\n", huge); err != nil {
		t.Fatal(err)
	}
	conn2.SetReadDeadline(time.Now().Add(30 * time.Second))
	resp, err := r2.ReadString('\n')
	if err != nil || !strings.Contains(resp, "line too long") {
		t.Fatalf("huge PUT: %q, %v (want typed line-too-long error)", strings.TrimSpace(resp), err)
	}
	if _, err := r2.ReadString('\n'); err == nil {
		t.Fatal("connection survived an oversized line")
	}
}
