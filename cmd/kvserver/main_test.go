package main

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"clockrsm/internal/kvstore"
)

func TestParse(t *testing.T) {
	tests := []struct {
		line    string
		want    []byte
		wantErr bool
	}{
		{"PUT k v", kvstore.Put("k", []byte("v")), false},
		{"put k v", kvstore.Put("k", []byte("v")), false},
		{"PUT k value with spaces", kvstore.Put("k", []byte("value with spaces")), false},
		{"GET k", kvstore.Get("k"), false},
		{"DEL k", kvstore.Delete("k"), false},
		{"PUT k", nil, true},
		{"GET", nil, true},
		{"NOPE k", nil, true},
		{"DEL a b", nil, true},
	}
	for _, tt := range tests {
		got, err := parse(tt.line)
		if (err != nil) != tt.wantErr {
			t.Errorf("parse(%q) error = %v, wantErr %v", tt.line, err, tt.wantErr)
			continue
		}
		if err == nil && string(got) != string(tt.want) {
			t.Errorf("parse(%q) = %v, want %v", tt.line, got, tt.want)
		}
	}
}

// freePorts reserves n distinct loopback ports.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

func TestKVServerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real TCP cluster")
	}
	peerAddrs := freePorts(t, 3)
	clientAddrs := freePorts(t, 3)
	peers := strings.Join(peerAddrs, ",")

	for i := 0; i < 3; i++ {
		i := i
		go func() {
			// run blocks serving; errors after shutdown are expected.
			_ = run(i, peers, clientAddrs[i], 5*time.Millisecond, 0, "")
		}()
	}

	// Wait for the client port to accept.
	dial := func(addr string) net.Conn {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			c, err := net.Dial("tcp", addr)
			if err == nil {
				return c
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("server at %s never came up", addr)
		return nil
	}

	c0 := dial(clientAddrs[0])
	defer c0.Close()
	r0 := bufio.NewReader(c0)

	send := func(conn net.Conn, r *bufio.Reader, line string) string {
		if _, err := fmt.Fprintln(conn, line); err != nil {
			t.Fatal(err)
		}
		resp, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(resp)
	}

	if resp := send(c0, r0, "PUT city Lausanne"); resp != "OK (nil)" {
		t.Fatalf("PUT reply = %q", resp)
	}
	if resp := send(c0, r0, "GET city"); resp != "OK Lausanne" {
		t.Fatalf("GET reply = %q", resp)
	}
	// Linearizable read via another replica.
	c1 := dial(clientAddrs[1])
	defer c1.Close()
	r1 := bufio.NewReader(c1)
	if resp := send(c1, r1, "GET city"); resp != "OK Lausanne" {
		t.Fatalf("GET via r1 reply = %q", resp)
	}
	if resp := send(c1, r1, "DEL city"); resp != "OK Lausanne" {
		t.Fatalf("DEL reply = %q", resp)
	}
	if resp := send(c0, r0, "BOGUS x"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("bogus command reply = %q", resp)
	}
}
