package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"clockrsm/internal/kvstore"
)

func TestParse(t *testing.T) {
	tests := []struct {
		line    string
		want    []byte
		wantErr bool
	}{
		{"PUT k v", kvstore.Put("k", []byte("v")), false},
		{"put k v", kvstore.Put("k", []byte("v")), false},
		{"PUT k value with spaces", kvstore.Put("k", []byte("value with spaces")), false},
		{"GET k", kvstore.Get("k"), false},
		{"DEL k", kvstore.Delete("k"), false},
		{"PUT k", nil, true},
		{"GET", nil, true},
		{"NOPE k", nil, true},
		{"DEL a b", nil, true},
	}
	for _, tt := range tests {
		got, err := parse(tt.line)
		if (err != nil) != tt.wantErr {
			t.Errorf("parse(%q) error = %v, wantErr %v", tt.line, err, tt.wantErr)
			continue
		}
		if err == nil && string(got) != string(tt.want) {
			t.Errorf("parse(%q) = %v, want %v", tt.line, got, tt.want)
		}
	}
}

// freePorts reserves n distinct loopback ports.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

func TestKVServerEndToEnd(t *testing.T) { testKVServerEndToEnd(t, 1) }

// TestKVServerEndToEndSharded runs the same client script against a
// cluster hosting four key-sharded groups per replica: routing is
// transparent to clients and linearizable per key.
func TestKVServerEndToEndSharded(t *testing.T) { testKVServerEndToEnd(t, 4) }

func testKVServerEndToEnd(t *testing.T, groups int) {
	if testing.Short() {
		t.Skip("spawns a real TCP cluster")
	}
	peerAddrs := freePorts(t, 3)
	clientAddrs := freePorts(t, 3)
	peers := strings.Join(peerAddrs, ",")

	for i := 0; i < 3; i++ {
		i := i
		go func() {
			// run blocks serving; errors after shutdown are expected.
			_ = run(i, peers, clientAddrs[i], groups, 5*time.Millisecond, 0, "", 30*time.Second)
		}()
	}

	// Wait for the client port to accept.
	dial := func(addr string) net.Conn {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			c, err := net.Dial("tcp", addr)
			if err == nil {
				return c
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("server at %s never came up", addr)
		return nil
	}

	c0 := dial(clientAddrs[0])
	defer c0.Close()
	r0 := bufio.NewReader(c0)

	send := func(conn net.Conn, r *bufio.Reader, line string) string {
		if _, err := fmt.Fprintln(conn, line); err != nil {
			t.Fatal(err)
		}
		resp, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(resp)
	}

	if resp := send(c0, r0, "PUT city Lausanne"); resp != "OK (nil)" {
		t.Fatalf("PUT reply = %q", resp)
	}
	if resp := send(c0, r0, "GET city"); resp != "OK Lausanne" {
		t.Fatalf("GET reply = %q", resp)
	}
	// Linearizable read via another replica.
	c1 := dial(clientAddrs[1])
	defer c1.Close()
	r1 := bufio.NewReader(c1)
	if resp := send(c1, r1, "GET city"); resp != "OK Lausanne" {
		t.Fatalf("GET via r1 reply = %q", resp)
	}
	if resp := send(c1, r1, "DEL city"); resp != "OK Lausanne" {
		t.Fatalf("DEL reply = %q", resp)
	}
	if resp := send(c0, r0, "BOGUS x"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("bogus command reply = %q", resp)
	}
	// Spread writes over many keys so a sharded cluster exercises every
	// group, then read them back through another replica.
	for i := 0; i < 8; i++ {
		key, val := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		if resp := send(c0, r0, "PUT "+key+" "+val); resp != "OK (nil)" {
			t.Fatalf("PUT %s reply = %q", key, resp)
		}
	}
	for i := 0; i < 8; i++ {
		key, val := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		if resp := send(c1, r1, "GET "+key); resp != "OK "+val {
			t.Fatalf("GET %s via r1 reply = %q, want %q", key, resp, "OK "+val)
		}
	}
}

func TestCheckGroupLayoutGuardsRegrouping(t *testing.T) {
	base := t.TempDir() + "/rsm.log"
	// A first start passes the check, then records the count.
	if err := checkGroupLayout(base, 4); err != nil {
		t.Fatal(err)
	}
	if err := recordGroupLayout(base, 4); err != nil {
		t.Fatal(err)
	}
	// Same count restarts fine; a different count is refused.
	if err := checkGroupLayout(base, 4); err != nil {
		t.Fatalf("same-count restart refused: %v", err)
	}
	if err := checkGroupLayout(base, 2); err == nil {
		t.Fatal("regrouping 4 -> 2 over existing logs was allowed")
	}
	if err := checkGroupLayout(base, 1); err == nil {
		t.Fatal("regrouping 4 -> 1 over existing logs was allowed")
	}
}

func TestCheckGroupLayoutFailedFirstStartLeavesNoMarker(t *testing.T) {
	// A start that fails after the check but before recordGroupLayout
	// must not block a retry with a different count.
	base := t.TempDir() + "/rsm.log"
	if err := checkGroupLayout(base, 5000); err != nil {
		t.Fatal(err)
	}
	// No recordGroupLayout: startup died later (e.g. invalid flags).
	if err := checkGroupLayout(base, 4); err != nil {
		t.Fatalf("retry after failed first start refused: %v", err)
	}
}

func TestCheckGroupLayoutLegacySingleGroupLog(t *testing.T) {
	base := t.TempDir() + "/rsm.log"
	// A non-empty pre-sharding log (no marker) must not be silently
	// abandoned by a multi-group start…
	if err := os.WriteFile(base, []byte("entries"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkGroupLayout(base, 4); err == nil {
		t.Fatal("multi-group start over a legacy single-group log was allowed")
	}
	// …but a single-group start adopts it and records the marker.
	if err := checkGroupLayout(base, 1); err != nil {
		t.Fatal(err)
	}
	if err := recordGroupLayout(base, 1); err != nil {
		t.Fatal(err)
	}
	if err := checkGroupLayout(base, 4); err == nil {
		t.Fatal("regrouping 1 -> 4 over existing logs was allowed")
	}
}
