package main

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"clockrsm/internal/chaos"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/node"
	"clockrsm/internal/reshard"
)

func TestParse(t *testing.T) {
	tests := []struct {
		line    string
		want    []byte
		wantErr bool
	}{
		{"PUT k v", kvstore.Put("k", []byte("v")), false},
		{"put k v", kvstore.Put("k", []byte("v")), false},
		{"PUT k value with spaces", kvstore.Put("k", []byte("value with spaces")), false},
		{"GET k", kvstore.Get("k"), false},
		{"DEL k", kvstore.Delete("k"), false},
		{"PUT k", nil, true},
		{"GET", nil, true},
		{"NOPE k", nil, true},
		{"DEL a b", nil, true},
	}
	for _, tt := range tests {
		got, err := parse(tt.line)
		if (err != nil) != tt.wantErr {
			t.Errorf("parse(%q) error = %v, wantErr %v", tt.line, err, tt.wantErr)
			continue
		}
		if err == nil && string(got) != string(tt.want) {
			t.Errorf("parse(%q) = %v, want %v", tt.line, got, tt.want)
		}
	}
}

func TestParseRead(t *testing.T) {
	var sess node.Session
	tests := []struct {
		line    string
		isRead  bool
		wantErr bool
		tier    node.Tier
	}{
		{"GETL k", true, false, node.TierLinearizable},
		{"getl k", true, false, node.TierLinearizable},
		{"GETS k", true, false, node.TierSequential},
		{"GETA k", true, false, node.TierStale},
		{"GETA k 250ms", true, false, node.TierStale},
		{"GETA k bogus", true, true, 0},
		{"GETL", true, true, 0},
		{"GETS a b", true, true, 0},
		{"GET k", false, false, 0},
		{"PUT k v", false, false, 0},
		{"", false, false, 0},
	}
	for _, tt := range tests {
		query, lvl, isRead, err := parseRead(tt.line, &sess)
		if isRead != tt.isRead {
			t.Errorf("parseRead(%q) isRead = %v, want %v", tt.line, isRead, tt.isRead)
			continue
		}
		if !isRead {
			continue
		}
		if (err != nil) != tt.wantErr {
			t.Errorf("parseRead(%q) error = %v, wantErr %v", tt.line, err, tt.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if lvl.Tier() != tt.tier {
			t.Errorf("parseRead(%q) tier = %v, want %v", tt.line, lvl.Tier(), tt.tier)
		}
		if string(query) != string(kvstore.Get("k")) {
			t.Errorf("parseRead(%q) query = %v", tt.line, query)
		}
	}
}

// freePorts reserves n distinct loopback ports.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

func TestKVServerEndToEnd(t *testing.T) { testKVServerEndToEnd(t, 1) }

// TestKVServerEndToEndSharded runs the same client script against a
// cluster hosting four key-sharded groups per replica: routing is
// transparent to clients and linearizable per key.
func TestKVServerEndToEndSharded(t *testing.T) { testKVServerEndToEnd(t, 4) }

func testKVServerEndToEnd(t *testing.T, groups int) {
	if testing.Short() {
		t.Skip("spawns a real TCP cluster")
	}
	peerAddrs := freePorts(t, 3)
	clientAddrs := freePorts(t, 3)
	peers := strings.Join(peerAddrs, ",")

	for i := 0; i < 3; i++ {
		i := i
		go func() {
			// run blocks serving; errors after shutdown are expected.
			_ = run(serverConfig{
				id: i, peers: peers, clientAddr: clientAddrs[i], groups: groups,
				delta: 5 * time.Millisecond, clientTimeout: 30 * time.Second,
				fsync: "always", rejoin: "auto",
			})
		}()
	}

	// Wait for the client port to accept.
	dial := func(addr string) net.Conn {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			c, err := net.Dial("tcp", addr)
			if err == nil {
				return c
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("server at %s never came up", addr)
		return nil
	}

	c0 := dial(clientAddrs[0])
	defer c0.Close()
	r0 := bufio.NewReader(c0)

	send := func(conn net.Conn, r *bufio.Reader, line string) string {
		if _, err := fmt.Fprintln(conn, line); err != nil {
			t.Fatal(err)
		}
		resp, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(resp)
	}

	if resp := send(c0, r0, "PUT city Lausanne"); resp != "OK (nil)" {
		t.Fatalf("PUT reply = %q", resp)
	}
	if resp := send(c0, r0, "GET city"); resp != "OK Lausanne" {
		t.Fatalf("GET reply = %q", resp)
	}
	// Linearizable read via another replica.
	c1 := dial(clientAddrs[1])
	defer c1.Close()
	r1 := bufio.NewReader(c1)
	if resp := send(c1, r1, "GET city"); resp != "OK Lausanne" {
		t.Fatalf("GET via r1 reply = %q", resp)
	}
	// Consistency-tiered reads, served from the stable prefix: the
	// write completed, so every level observes it at every replica.
	if resp := send(c1, r1, "GETL city"); resp != "OK Lausanne" {
		t.Fatalf("GETL reply = %q", resp)
	}
	if resp := send(c1, r1, "GETS city"); resp != "OK Lausanne" {
		t.Fatalf("GETS reply = %q", resp)
	}
	if resp := send(c1, r1, "GETA city 1h"); resp != "OK Lausanne" {
		t.Fatalf("GETA reply = %q", resp)
	}
	if resp := send(c1, r1, "GETA city"); resp != "OK Lausanne" {
		t.Fatalf("unbounded GETA reply = %q", resp)
	}
	if resp := send(c1, r1, "GETA city nonsense"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("malformed GETA reply = %q", resp)
	}
	if resp := send(c1, r1, "GETL"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("keyless GETL reply = %q", resp)
	}
	if resp := send(c1, r1, "DEL city"); resp != "OK Lausanne" {
		t.Fatalf("DEL reply = %q", resp)
	}
	// A linearizable local read observes the delete that just completed
	// on this very connection.
	if resp := send(c1, r1, "GETL city"); resp != "OK (nil)" {
		t.Fatalf("GETL after DEL reply = %q", resp)
	}
	if resp := send(c0, r0, "BOGUS x"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("bogus command reply = %q", resp)
	}
	// Spread writes over many keys so a sharded cluster exercises every
	// group, then read them back through another replica.
	for i := 0; i < 8; i++ {
		key, val := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		if resp := send(c0, r0, "PUT "+key+" "+val); resp != "OK (nil)" {
			t.Fatalf("PUT %s reply = %q", key, resp)
		}
	}
	for i := 0; i < 8; i++ {
		key, val := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		if resp := send(c1, r1, "GET "+key); resp != "OK "+val {
			t.Fatalf("GET %s via r1 reply = %q, want %q", key, resp, "OK "+val)
		}
	}
}

// TestKVServerChaosArmed starts one replica with a replayed fault
// schedule — a clock jump plus slow log appends, both benign to
// liveness — and checks that commands still commit and the injected
// faults surface in STATUS.
func TestKVServerChaosArmed(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real TCP cluster")
	}
	peerAddrs := freePorts(t, 3)
	clientAddrs := freePorts(t, 3)
	peers := strings.Join(peerAddrs, ",")
	sched := chaos.Schedule{
		Clock: []chaos.ClockFault{{Replica: 0, Kind: chaos.ClockJump, At: 0, Duration: time.Hour, Magnitude: 5 * time.Millisecond}},
		Disk:  []chaos.DiskFault{{Replica: 0, Kind: chaos.DiskSlowAppend, At: 0, Duration: time.Hour, Stall: 200 * time.Microsecond}},
	}
	schedPath := filepath.Join(t.TempDir(), "sched.chs")
	if err := os.WriteFile(schedPath, chaos.EncodeSchedule(sched), 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		cfg := serverConfig{
			id: i, peers: peers, clientAddr: clientAddrs[i], groups: 1,
			delta: 5 * time.Millisecond, clientTimeout: 30 * time.Second,
			fsync: "off", rejoin: "auto",
		}
		if i == 0 {
			cfg.chaosSchedule = schedPath
			cfg.logPath = filepath.Join(t.TempDir(), "wal") // disk faults wrap the file log
		}
		go func() { _ = run(cfg) }()
	}
	dial := func(addr string) net.Conn {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			c, err := net.Dial("tcp", addr)
			if err == nil {
				return c
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("server at %s never came up", addr)
		return nil
	}
	c0 := dial(clientAddrs[0])
	defer c0.Close()
	r0 := bufio.NewReader(c0)
	send := func(line string) string {
		if _, err := fmt.Fprintln(c0, line); err != nil {
			t.Fatal(err)
		}
		resp, err := r0.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(resp)
	}
	if resp := send("PUT k v"); resp != "OK (nil)" {
		t.Fatalf("PUT under chaos reply = %q", resp)
	}
	if resp := send("GET k"); resp != "OK v" {
		t.Fatalf("GET under chaos reply = %q", resp)
	}
	status := send("STATUS")
	if !strings.Contains(status, "faults=(") ||
		!strings.Contains(status, "clock.jump=1") ||
		!strings.Contains(status, "disk.slow_append=") {
		t.Fatalf("STATUS does not surface injected faults: %q", status)
	}
}

func TestParseMembers(t *testing.T) {
	if ids, err := parseMembers("0,1,2"); err != nil || len(ids) != 3 || ids[2] != 2 {
		t.Errorf("parseMembers(0,1,2) = %v, %v", ids, err)
	}
	if ids, err := parseMembers("r0,R1,r2"); err != nil || len(ids) != 3 || ids[1] != 1 {
		t.Errorf("parseMembers(r0,R1,r2) = %v, %v", ids, err)
	}
	for _, bad := range []string{"", ",", "0,,1", "x", "r", "-1"} {
		if _, err := parseMembers(bad); err == nil {
			t.Errorf("parseMembers(%q) succeeded", bad)
		}
	}
}

// TestKVServerAdminEndToEnd exercises the operator API over the wire on
// a 3-replica, 2-group cluster: status introspection, an atomic shrink
// to {0,1} and a grow back to {0,1,2}, with data commands committing
// before, between and after the reconfigurations.
func TestKVServerAdminEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real TCP cluster")
	}
	peerAddrs := freePorts(t, 3)
	clientAddrs := freePorts(t, 3)
	peers := strings.Join(peerAddrs, ",")
	for i := 0; i < 3; i++ {
		i := i
		go func() {
			_ = run(serverConfig{
				id: i, peers: peers, clientAddr: clientAddrs[i], groups: 2,
				delta: 5 * time.Millisecond, clientTimeout: 30 * time.Second,
				fsync: "always", rejoin: "auto",
			})
		}()
	}
	dial := func(addr string) net.Conn {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			c, err := net.Dial("tcp", addr)
			if err == nil {
				return c
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("server at %s never came up", addr)
		return nil
	}
	c0 := dial(clientAddrs[0])
	defer c0.Close()
	r0 := bufio.NewReader(c0)
	send := func(line string) string {
		t.Helper()
		if _, err := fmt.Fprintln(c0, line); err != nil {
			t.Fatal(err)
		}
		resp, err := r0.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(resp)
	}

	if resp := send("PUT city Lugano"); resp != "OK (nil)" {
		t.Fatalf("PUT reply = %q", resp)
	}
	if resp := send("MEMBERS"); resp != "OK g0=r0,r1,r2 g1=r0,r1,r2" {
		t.Fatalf("MEMBERS = %q", resp)
	}
	if resp := send("EPOCH"); resp != "OK g0=0 g1=0" {
		t.Fatalf("EPOCH = %q", resp)
	}
	if resp := send("STATUS"); !strings.HasPrefix(resp, "OK id=r0 groups=2 routes=(version=1 groups=2 migrating=0) g0=(epoch=0 members=r0,r1,r2 in=true") {
		t.Fatalf("STATUS = %q", resp)
	}
	if resp := send("ROUTES"); resp != "OK version=1 slots=512 groups=2 g0=256 g1=256 migrating=0" {
		t.Fatalf("ROUTES = %q", resp)
	}

	// Shrink to {0,1}: both groups move atomically.
	if resp := send("RECONF 0,1"); resp != "OK members=r0,r1 epochs=g0:1,g1:1" {
		t.Fatalf("RECONF shrink = %q", resp)
	}
	if resp := send("GET city"); resp != "OK Lugano" {
		t.Fatalf("GET after shrink = %q", resp)
	}
	if resp := send("PUT city Basel"); resp != "OK Lugano" {
		t.Fatalf("PUT after shrink = %q", resp)
	}

	// Grow back, r-prefixed IDs; the rejoined replica serves reads.
	if resp := send("RECONF r0,r1,r2"); resp != "OK members=r0,r1,r2 epochs=g0:2,g1:2" {
		t.Fatalf("RECONF grow = %q", resp)
	}
	c2 := dial(clientAddrs[2])
	defer c2.Close()
	r2 := bufio.NewReader(c2)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := fmt.Fprintln(c2, "GET city"); err != nil {
			t.Fatal(err)
		}
		resp, err := r2.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if strings.TrimSpace(resp) == "OK Basel" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rejoined replica never served the value: %q", resp)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Malformed operator input is rejected without touching the cluster.
	if resp := send("RECONF 0"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("sub-majority RECONF = %q", resp)
	}
	if resp := send("RECONF x,y"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("garbage RECONF = %q", resp)
	}
	if resp := send("EPOCH"); resp != "OK g0=2 g1=2" {
		t.Fatalf("EPOCH after failed RECONFs = %q", resp)
	}
}

func TestCheckGroupLayoutGuardsRegrouping(t *testing.T) {
	base := t.TempDir() + "/rsm.log"
	// A first start passes the check, then records the count.
	if err := checkGroupLayout(base, 4, nil); err != nil {
		t.Fatal(err)
	}
	if err := recordGroupLayout(base, 4); err != nil {
		t.Fatal(err)
	}
	// Same count restarts fine; a different count is refused.
	if err := checkGroupLayout(base, 4, nil); err != nil {
		t.Fatalf("same-count restart refused: %v", err)
	}
	if err := checkGroupLayout(base, 2, nil); err == nil {
		t.Fatal("regrouping 4 -> 2 over existing logs was allowed")
	}
	if err := checkGroupLayout(base, 1, nil); err == nil {
		t.Fatal("regrouping 4 -> 1 over existing logs was allowed")
	}
}

func TestCheckGroupLayoutFailedFirstStartLeavesNoMarker(t *testing.T) {
	// A start that fails after the check but before recordGroupLayout
	// must not block a retry with a different count.
	base := t.TempDir() + "/rsm.log"
	if err := checkGroupLayout(base, 5000, nil); err != nil {
		t.Fatal(err)
	}
	// No recordGroupLayout: startup died later (e.g. invalid flags).
	if err := checkGroupLayout(base, 4, nil); err != nil {
		t.Fatalf("retry after failed first start refused: %v", err)
	}
}

func TestCheckGroupLayoutLegacySingleGroupLog(t *testing.T) {
	base := t.TempDir() + "/rsm.log"
	// A non-empty pre-sharding log (no marker) must not be silently
	// abandoned by a multi-group start…
	if err := os.WriteFile(base, []byte("entries"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkGroupLayout(base, 4, nil); err == nil {
		t.Fatal("multi-group start over a legacy single-group log was allowed")
	}
	// …but a single-group start adopts it and records the marker.
	if err := checkGroupLayout(base, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := recordGroupLayout(base, 1); err != nil {
		t.Fatal(err)
	}
	if err := checkGroupLayout(base, 4, nil); err == nil {
		t.Fatal("regrouping 1 -> 4 over existing logs was allowed")
	}
}

func TestCheckGroupLayoutRoutingTableLegitimizesGrowth(t *testing.T) {
	base := t.TempDir() + "/rsm.log"
	if err := checkGroupLayout(base, 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := recordGroupLayout(base, 2); err != nil {
		t.Fatal(err)
	}
	// With a persisted routing table carrying placement, growing hosted
	// capacity (spares for the next split) is legal…
	tbl := reshard.Legacy(2)
	if err := checkGroupLayout(base, 3, tbl); err != nil {
		t.Fatalf("table-backed growth 2 -> 3 refused: %v", err)
	}
	// …and the refusals that remain are typed and actionable.
	if err := checkGroupLayout(base, 1, tbl); err == nil {
		t.Fatal("table-backed shrink 2 -> 1 was allowed")
	} else {
		var le *GroupLayoutError
		if !errors.As(err, &le) {
			t.Fatalf("shrink refusal is not a *GroupLayoutError: %v", err)
		}
		if le.Prev != 2 || le.Want != 1 || le.Marker != base+".groups" {
			t.Fatalf("GroupLayoutError fields = %+v", le)
		}
	}
	// Without a table the old equality rule still protects placement,
	// and the error points the operator at the resharding flow.
	if err := checkGroupLayout(base, 3, nil); err == nil {
		t.Fatal("tableless growth 2 -> 3 was allowed")
	} else if !strings.Contains(err.Error(), "split") {
		t.Fatalf("tableless growth refusal does not mention resharding: %v", err)
	}
}
