package main

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"clockrsm/internal/node"
	"clockrsm/internal/types"
)

// admin serves the operator side of the line protocol on the client
// port:
//
//	MEMBERS              -> OK g0=r0,r1,r2 g1=r0,r1,r2
//	EPOCH                -> OK g0=1 g1=1
//	STATUS               -> OK id=r0 groups=2 routes=(...) g0=(epoch=... ...) g1=(...)
//	RECONF <id,id,...>   -> OK members=r0,r1,r2 epochs=g0:2,g1:2
//	ROUTES               -> OK version=3 slots=512 groups=3 g0=170 ... migrating=0
//	SPLIT <src> <dst>    -> OK from=g0 to=g2 gen=2 slots=128 pairs=940 chunks=8
//	HEAL                 -> OK splits=1 g0->g2:128
//
// RECONF drives every hosted group to the new configuration atomically
// (node.Host.ReconfigureAll); IDs may be bare ("0,1,2") or r-prefixed
// ("r0,r1,r2"). SPLIT live-moves half of group src's key slots to dst
// (a hosted spare or existing group) under the fence/checkpoint/install
// protocol of internal/reshard; HEAL rolls forward any split a crashed
// coordinator left mid-flight. It reports whether the line was an admin
// command; data commands (PUT/GET/DEL) fall through to the replication
// path.
func (s *server) admin(ctx context.Context, line string) (string, bool) {
	// Only the verb decides whether this is an admin line; don't split a
	// data command's whole value just to find out it is a PUT.
	verb, rest, _ := strings.Cut(line, " ")
	switch strings.ToUpper(verb) {
	case "MEMBERS":
		return "OK " + s.perGroup(func(g node.GroupStatus) string {
			return node.MemberString(g.Members)
		}), true
	case "EPOCH":
		return "OK " + s.perGroup(func(g node.GroupStatus) string {
			return strconv.FormatUint(uint64(g.Epoch), 10)
		}), true
	case "STATUS":
		st := s.host.Status()
		var b strings.Builder
		fmt.Fprintf(&b, "OK id=%s groups=%d routes=(version=%d groups=%d migrating=%d)",
			st.ID, len(st.Groups), st.RouteVersion, st.RouteGroups, st.RouteMigrating)
		if s.rpc != nil {
			cs := s.rpc.Counters()
			fmt.Fprintf(&b, " rpc=(conns=%d inflight=%d accepted=%d shed=%d)",
				cs.Conns, cs.InFlight, cs.Accepted, cs.Shed)
		}
		if len(st.Faults) > 0 {
			keys := make([]string, 0, len(st.Faults))
			for k := range st.Faults {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			b.WriteString(" faults=(")
			for i, k := range keys {
				if i > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%s=%d", k, st.Faults[k])
			}
			b.WriteString(")")
		}
		for _, g := range st.Groups {
			fmt.Fprintf(&b, " %s=(epoch=%d members=%s in=%t inflight=%d proposed=%d resolved=%d lat_n=%d lat_mean=%s lat_p95=%s lat_max=%s reads=%d parked=%d read_age=%s held_dropped=%d snap_restores=%d",
				g.Group, g.Epoch, node.MemberString(g.Members), g.InConfig,
				g.InFlight, g.Proposed, g.Resolved,
				g.CommitLatency.Samples, g.CommitLatency.Mean,
				g.CommitLatency.P95, g.CommitLatency.Max,
				g.ReadsLocal, g.ReadsParked, g.ReadAge, g.HeldDropped,
				g.SnapRestores)
			if g.LinkGaps > 0 {
				fmt.Fprintf(&b, " link_gaps=%d", g.LinkGaps)
			}
			fmt.Fprintf(&b, " slots=%d migrating_out=%d", g.Slots, g.MigratingOut)
			if g.FsyncMode != "" {
				fmt.Fprintf(&b, " fsync=%s appends=%d fsyncs=%d fsync_batch_max=%d",
					g.FsyncMode, g.Log.Appends, g.Log.Syncs, g.Log.MaxBatch)
			}
			b.WriteString(")")
		}
		return b.String(), true
	case "RECONF":
		args := strings.Fields(rest)
		if len(args) != 1 {
			return "ERR usage: RECONF <id,id,...>", true
		}
		members, err := parseMembers(args[0])
		if err != nil {
			return "ERR " + err.Error(), true
		}
		rctx, done := ctx, func() {}
		if s.timeout > 0 {
			rctx, done = context.WithTimeout(ctx, s.timeout)
		}
		defer done()
		if err := s.host.ReconfigureAll(rctx, members); err != nil {
			return "ERR reconf: " + err.Error(), true
		}
		st := s.host.Status()
		epochs := make([]string, len(st.Groups))
		for i, g := range st.Groups {
			epochs[i] = fmt.Sprintf("%s:%d", g.Group, g.Epoch)
		}
		return fmt.Sprintf("OK members=%s epochs=%s",
			node.MemberString(st.Groups[0].Members), strings.Join(epochs, ",")), true
	case "ROUTES":
		t := s.host.Table()
		var b strings.Builder
		fmt.Fprintf(&b, "OK version=%d slots=%d groups=%d", t.Version, t.NumSlots(), t.Groups())
		for g := 0; g < s.host.Groups(); g++ {
			fmt.Fprintf(&b, " g%d=%d", g, len(t.OwnedSlots(types.GroupID(g))))
		}
		migs := t.Migrations()
		fmt.Fprintf(&b, " migrating=%d", len(migs))
		if len(migs) > 0 {
			// Summarize migrations as from->to:gen:count, deterministic order.
			type edge struct {
				from, to types.GroupID
				gen      uint32
			}
			counts := make(map[edge]int)
			for _, c := range migs {
				counts[edge{c.Owner, c.To, c.Gen}]++
			}
			edges := make([]edge, 0, len(counts))
			for e := range counts {
				edges = append(edges, e)
			}
			sort.Slice(edges, func(i, j int) bool {
				if edges[i].from != edges[j].from {
					return edges[i].from < edges[j].from
				}
				if edges[i].to != edges[j].to {
					return edges[i].to < edges[j].to
				}
				return edges[i].gen < edges[j].gen
			})
			for _, e := range edges {
				fmt.Fprintf(&b, " %s->%s:gen%d:%d", e.from, e.to, e.gen, counts[e])
			}
		}
		return b.String(), true
	case "SPLIT":
		args := strings.Fields(rest)
		if len(args) != 2 {
			return "ERR usage: SPLIT <src-group> <dst-group>", true
		}
		src, err1 := parseGroup(args[0])
		dst, err2 := parseGroup(args[1])
		if err1 != nil || err2 != nil {
			return "ERR bad group (want g0, g1, ... or a bare index)", true
		}
		sctx, done := ctx, func() {}
		if s.timeout > 0 {
			sctx, done = context.WithTimeout(ctx, s.timeout)
		}
		defer done()
		rep, err := s.host.Split(sctx, src, dst)
		if err != nil {
			return "ERR split: " + err.Error(), true
		}
		return fmt.Sprintf("OK from=%s to=%s gen=%d slots=%d pairs=%d chunks=%d",
			rep.From, rep.To, rep.Gen, rep.Slots, rep.Pairs, rep.Chunks), true
	case "HEAL":
		hctx, done := ctx, func() {}
		if s.timeout > 0 {
			hctx, done = context.WithTimeout(ctx, s.timeout)
		}
		defer done()
		reps, err := s.host.Heal(hctx)
		if err != nil {
			return "ERR heal: " + err.Error(), true
		}
		var b strings.Builder
		fmt.Fprintf(&b, "OK splits=%d", len(reps))
		for _, r := range reps {
			fmt.Fprintf(&b, " %s->%s:%d", r.From, r.To, r.Slots)
		}
		return b.String(), true
	}
	return "", false
}

// parseGroup parses "g0", "G1" or a bare index into a GroupID.
func parseGroup(tok string) (types.GroupID, error) {
	tok = strings.TrimPrefix(strings.ToLower(strings.TrimSpace(tok)), "g")
	n, err := strconv.Atoi(tok)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad group %q", tok)
	}
	return types.GroupID(n), nil
}

// perGroup renders one field per hosted group as "g0=v0 g1=v1 ...".
func (s *server) perGroup(field func(node.GroupStatus) string) string {
	st := s.host.Status()
	parts := make([]string, len(st.Groups))
	for i, g := range st.Groups {
		parts[i] = fmt.Sprintf("%s=%s", g.Group, field(g))
	}
	return strings.Join(parts, " ")
}

// parseMembers parses "0,1,2" or "r0,r1,r2" into replica IDs.
func parseMembers(list string) ([]types.ReplicaID, error) {
	var out []types.ReplicaID
	for _, tok := range strings.Split(list, ",") {
		tok = strings.TrimSpace(strings.TrimPrefix(strings.ToLower(strings.TrimSpace(tok)), "r"))
		if tok == "" {
			return nil, fmt.Errorf("empty replica ID in %q", list)
		}
		id, err := strconv.Atoi(tok)
		if err != nil || id < 0 {
			return nil, fmt.Errorf("bad replica ID %q", tok)
		}
		out = append(out, types.ReplicaID(id))
	}
	return out, nil
}
