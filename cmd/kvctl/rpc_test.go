package main

import (
	"context"
	"io"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"clockrsm/internal/core"
	"clockrsm/internal/kvstore"
	"clockrsm/internal/node"
	"clockrsm/internal/rpc"
	"clockrsm/internal/rsm"
	"clockrsm/internal/transport"
	"clockrsm/internal/types"
)

func TestParseGet(t *testing.T) {
	tests := []struct {
		args    []string
		want    getSpec
		wantErr bool
	}{
		{[]string{"k"}, getSpec{key: "k"}, false},
		{[]string{"-level=lin", "k"}, getSpec{key: "k", level: "lin"}, false},
		{[]string{"k", "-level=seq"}, getSpec{key: "k", level: "seq"}, false},
		{[]string{"-level=stale", "-maxage=50ms", "k"}, getSpec{key: "k", level: "stale", maxAge: "50ms"}, false},
		{[]string{"-level=bogus", "k"}, getSpec{}, true},
		{[]string{"-maxage=50ms", "k"}, getSpec{}, true},
		{[]string{"k", "extra"}, getSpec{}, true},
		{nil, getSpec{}, true},
	}
	for _, tt := range tests {
		got, err := parseGet(tt.args)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseGet(%v) error = %v, wantErr %v", tt.args, err, tt.wantErr)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("parseGet(%v) = %+v, want %+v", tt.args, got, tt.want)
		}
	}
}

// startRPCCluster runs an in-process 3-replica cluster with a
// front-door server per replica and returns their addresses.
func startRPCCluster(t *testing.T) []string {
	t.Helper()
	const n = 3
	hub := transport.NewHub(n, transport.HubOptions{Codec: true})
	t.Cleanup(hub.Close)
	spec := make([]types.ReplicaID, n)
	for i := range spec {
		spec[i] = types.ReplicaID(i)
	}
	var hosts []*node.Host
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		h, err := node.NewHost(id, spec, hub.Endpoint(id), node.HostOptions{})
		if err != nil {
			t.Fatal(err)
		}
		app := &rsm.App{SM: kvstore.New()}
		nd := h.Group(0)
		nd.Bind(app)
		nd.SetProtocol(core.New(nd, app, core.Options{ClockTimeInterval: 2 * time.Millisecond}))
		hosts = append(hosts, h)
	}
	for _, h := range hosts {
		if err := h.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, h := range hosts {
			h.Stop()
		}
	})
	var addrs []string
	for _, h := range hosts {
		srv := rpc.NewServer(h, rpc.ServerOptions{
			Admin: func(ctx context.Context, line string) (string, bool) {
				if line == "MEMBERS" {
					return "OK g0=r0,r1,r2", true
				}
				return "", false
			},
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(srv.Close)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs
}

// captureStdout runs fn with os.Stdout redirected into a pipe and
// returns whatever it printed.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := fn()
	w.Close()
	os.Stdout = old
	out, _ := io.ReadAll(r)
	r.Close()
	return string(out), ferr
}

// TestRunRPCEndToEnd drives every kvctl verb through the -rpc path
// against a live cluster and checks the printed replies.
func TestRunRPCEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real TCP cluster")
	}
	addrs := startRPCCluster(t)
	addr := strings.Join(addrs, ",")
	const timeout = 30 * time.Second

	invoke := func(args ...string) (string, error) {
		return captureStdout(t, func() error { return runRPC(addr, timeout, args) })
	}

	steps := []struct {
		args []string
		want string
	}{
		{[]string{"put", "city", "Lausanne"}, "OK (nil)\n"},
		{[]string{"put", "city", "New York"}, "OK Lausanne\n"},
		{[]string{"get", "city"}, "OK New York\n"},
		{[]string{"get", "-level=lin", "city"}, "OK New York\n"},
		{[]string{"get", "-level=seq", "city"}, "OK New York\n"},
		{[]string{"get", "-level=stale", "city"}, "OK New York\n"},
		{[]string{"get", "-level=stale", "-maxage=10s", "city"}, "OK New York\n"},
		{[]string{"del", "city"}, "OK New York\n"},
		{[]string{"get", "city"}, "OK (nil)\n"},
		{[]string{"members"}, "OK g0=r0,r1,r2\n"},
	}
	for _, st := range steps {
		out, err := invoke(st.args...)
		if err != nil {
			t.Fatalf("runRPC(%v): %v", st.args, err)
		}
		if out != st.want {
			t.Fatalf("runRPC(%v) printed %q, want %q", st.args, out, st.want)
		}
	}

	// Usage errors surface before any network traffic.
	if _, err := invoke("put", "k"); err == nil {
		t.Fatal("short put accepted")
	}
	if _, err := invoke("bogus"); err == nil {
		t.Fatal("unknown verb accepted")
	}
	if _, err := invoke("get", "-level=stale", "-maxage=nonsense", "k"); err == nil {
		t.Fatal("bad -maxage accepted")
	}
	// An admin verb the hook rejects maps to a bad-request error.
	if _, err := invoke("status"); err == nil {
		t.Fatal("unhandled admin verb did not error")
	}
}
