package main

import "testing"

func TestBuildLine(t *testing.T) {
	tests := []struct {
		args    []string
		want    string
		wantErr bool
	}{
		{[]string{"put", "k", "v"}, "PUT k v", false},
		{[]string{"PUT", "k", "two words"}, "PUT k two words", false},
		{[]string{"put", "k", "two", "words"}, "PUT k two words", false},
		{[]string{"get", "k"}, "GET k", false},
		{[]string{"get", "-level=lin", "k"}, "GETL k", false},
		{[]string{"get", "-level=seq", "k"}, "GETS k", false},
		{[]string{"get", "-level=stale", "k"}, "GETA k", false},
		{[]string{"get", "-level=stale", "-maxage=100ms", "k"}, "GETA k 100ms", false},
		{[]string{"get", "k", "-level=lin"}, "GETL k", false},
		{[]string{"get", "-level=bogus", "k"}, "", true},
		{[]string{"get", "-level=lin", "-maxage=100ms", "k"}, "", true},
		{[]string{"get", "-maxage=100ms", "k"}, "", true},
		{[]string{"get", "-level=lin", "k", "extra"}, "", true},
		{[]string{"get", "-level=lin"}, "", true},
		{[]string{"del", "k"}, "DEL k", false},
		{[]string{"del", "k", "x"}, "", true},
		{[]string{"members"}, "MEMBERS", false},
		{[]string{"epoch"}, "EPOCH", false},
		{[]string{"status"}, "STATUS", false},
		{[]string{"reconf", "0,1,2"}, "RECONF 0,1,2", false},
		{[]string{"reconf", "0", "1", "2"}, "RECONF 0,1,2", false},
		{[]string{"reconf", "r0,r1", "r2"}, "RECONF r0,r1,r2", false},
		{[]string{"put", "k"}, "", true},
		{[]string{"get"}, "", true},
		{[]string{"members", "x"}, "", true},
		{[]string{"reconf"}, "", true},
		{[]string{"reconf", ","}, "", true},
		{[]string{"bogus"}, "", true},
		{nil, "", true},
	}
	for _, tt := range tests {
		got, err := buildLine(tt.args)
		if (err != nil) != tt.wantErr {
			t.Errorf("buildLine(%v) error = %v, wantErr %v", tt.args, err, tt.wantErr)
			continue
		}
		if got != tt.want {
			t.Errorf("buildLine(%v) = %q, want %q", tt.args, got, tt.want)
		}
	}
}
