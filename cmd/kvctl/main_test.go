package main

import "testing"

func TestBuildLine(t *testing.T) {
	tests := []struct {
		args    []string
		want    string
		wantErr bool
	}{
		{[]string{"put", "k", "v"}, "PUT k v", false},
		{[]string{"PUT", "k", "two words"}, "PUT k two words", false},
		{[]string{"put", "k", "two", "words"}, "PUT k two words", false},
		{[]string{"get", "k"}, "GET k", false},
		{[]string{"del", "k"}, "DEL k", false},
		{[]string{"members"}, "MEMBERS", false},
		{[]string{"epoch"}, "EPOCH", false},
		{[]string{"status"}, "STATUS", false},
		{[]string{"reconf", "0,1,2"}, "RECONF 0,1,2", false},
		{[]string{"reconf", "0", "1", "2"}, "RECONF 0,1,2", false},
		{[]string{"reconf", "r0,r1", "r2"}, "RECONF r0,r1,r2", false},
		{[]string{"put", "k"}, "", true},
		{[]string{"get"}, "", true},
		{[]string{"members", "x"}, "", true},
		{[]string{"reconf"}, "", true},
		{[]string{"reconf", ","}, "", true},
		{[]string{"bogus"}, "", true},
		{nil, "", true},
	}
	for _, tt := range tests {
		got, err := buildLine(tt.args)
		if (err != nil) != tt.wantErr {
			t.Errorf("buildLine(%v) error = %v, wantErr %v", tt.args, err, tt.wantErr)
			continue
		}
		if got != tt.want {
			t.Errorf("buildLine(%v) = %q, want %q", tt.args, got, tt.want)
		}
	}
}
