// Command kvctl is a minimal client for kvserver's line protocol.
//
// Usage:
//
//	kvctl -addr 127.0.0.1:7200 put greeting hello
//	kvctl -addr 127.0.0.1:7200 get greeting
//	kvctl -addr 127.0.0.1:7200 del greeting
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7200", "kvserver client address")
	timeout := flag.Duration("timeout", 30*time.Second, "request timeout")
	flag.Parse()

	if err := run(*addr, *timeout, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "kvctl:", err)
		os.Exit(1)
	}
}

func run(addr string, timeout time.Duration, args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: kvctl [flags] put|get|del <key> [value]")
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}

	line := strings.ToUpper(args[0]) + " " + strings.Join(args[1:], " ")
	if _, err := fmt.Fprintln(conn, line); err != nil {
		return err
	}
	resp, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return fmt.Errorf("read reply: %w", err)
	}
	fmt.Print(resp)
	if strings.HasPrefix(resp, "ERR") {
		return fmt.Errorf("server error")
	}
	return nil
}
