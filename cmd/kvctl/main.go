// Command kvctl is a client for kvserver's line protocol: the data
// commands and the membership/status operator API.
//
// Data:
//
//	kvctl -addr 127.0.0.1:7200 put greeting hello
//	kvctl -addr 127.0.0.1:7200 get greeting
//	kvctl -addr 127.0.0.1:7200 del greeting
//
// Reads take a consistency level (default: the replicated read, which
// commits through the log like a write):
//
//	kvctl -addr 127.0.0.1:7200 get -level=lin greeting     # GETL: local linearizable
//	kvctl -addr 127.0.0.1:7200 get -level=seq greeting     # GETS: session-monotonic
//	kvctl -addr 127.0.0.1:7200 get -level=stale greeting   # GETA: immediate
//	kvctl -addr 127.0.0.1:7200 get -level=stale -maxage=100ms greeting
//
// Operations:
//
//	kvctl -addr 127.0.0.1:7200 members        # per-group member sets
//	kvctl -addr 127.0.0.1:7200 epoch          # per-group epochs
//	kvctl -addr 127.0.0.1:7200 status         # full per-group snapshot
//	kvctl -addr 127.0.0.1:7200 reconf 0,1,2   # reconfigure all groups
//
// reconf accepts replica IDs separated by commas or spaces, bare or
// r-prefixed ("reconf 0 1 2", "reconf r0,r1,r2"). It drives every
// group hosted by the addressed replica to the new configuration and
// prints the resulting member set and per-group epochs.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7200", "kvserver client address")
	timeout := flag.Duration("timeout", 30*time.Second, "request timeout")
	flag.Parse()

	if err := run(*addr, *timeout, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "kvctl:", err)
		os.Exit(1)
	}
}

// buildLine translates a kvctl invocation into one protocol line.
func buildLine(args []string) (string, error) {
	usage := fmt.Errorf("usage: kvctl [flags] put|get|del <key> [value] | members|epoch|status | reconf <id,id,...>")
	if len(args) == 0 {
		return "", usage
	}
	switch strings.ToLower(args[0]) {
	case "put":
		if len(args) < 3 {
			return "", fmt.Errorf("usage: kvctl put <key> <value>")
		}
		return "PUT " + args[1] + " " + strings.Join(args[2:], " "), nil
	case "get":
		level, maxAge := "", ""
		var keys []string
		for _, a := range args[1:] {
			switch {
			case strings.HasPrefix(a, "-level="):
				level = strings.TrimPrefix(a, "-level=")
			case strings.HasPrefix(a, "-maxage="):
				maxAge = strings.TrimPrefix(a, "-maxage=")
			default:
				keys = append(keys, a)
			}
		}
		if len(keys) != 1 {
			return "", fmt.Errorf("usage: kvctl get [-level=lin|seq|stale] [-maxage=<dur>] <key>")
		}
		if maxAge != "" && level != "stale" {
			return "", fmt.Errorf("-maxage applies only to -level=stale (the other levels have no staleness bound)")
		}
		switch level {
		case "":
			return "GET " + keys[0], nil
		case "lin":
			return "GETL " + keys[0], nil
		case "seq":
			return "GETS " + keys[0], nil
		case "stale":
			if maxAge != "" {
				return "GETA " + keys[0] + " " + maxAge, nil
			}
			return "GETA " + keys[0], nil
		default:
			return "", fmt.Errorf("unknown read level %q (want lin, seq or stale)", level)
		}
	case "del":
		if len(args) != 2 {
			return "", fmt.Errorf("usage: kvctl del <key>")
		}
		return "DEL " + args[1], nil
	case "members", "epoch", "status":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: kvctl %s", strings.ToLower(args[0]))
		}
		return strings.ToUpper(args[0]), nil
	case "reconf":
		if len(args) < 2 {
			return "", fmt.Errorf("usage: kvctl reconf <id,id,...>")
		}
		var ids []string
		for _, arg := range args[1:] {
			for _, tok := range strings.Split(arg, ",") {
				if tok = strings.TrimSpace(tok); tok != "" {
					ids = append(ids, tok)
				}
			}
		}
		if len(ids) == 0 {
			return "", fmt.Errorf("usage: kvctl reconf <id,id,...>")
		}
		return "RECONF " + strings.Join(ids, ","), nil
	default:
		return "", usage
	}
}

func run(addr string, timeout time.Duration, args []string) error {
	line, err := buildLine(args)
	if err != nil {
		return err
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}

	if _, err := fmt.Fprintln(conn, line); err != nil {
		return err
	}
	resp, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return fmt.Errorf("read reply: %w", err)
	}
	fmt.Print(resp)
	if strings.HasPrefix(resp, "ERR") {
		return fmt.Errorf("server error")
	}
	return nil
}
