// Command kvctl is a client for kvserver: the data commands and the
// membership/status operator API, over either protocol.
//
// Data:
//
//	kvctl -addr 127.0.0.1:7200 put greeting hello
//	kvctl -addr 127.0.0.1:7200 get greeting
//	kvctl -addr 127.0.0.1:7200 del greeting
//
// Reads take a consistency level (default: the replicated read, which
// commits through the log like a write):
//
//	kvctl -addr 127.0.0.1:7200 get -level=lin greeting     # GETL: local linearizable
//	kvctl -addr 127.0.0.1:7200 get -level=seq greeting     # GETS: session-monotonic
//	kvctl -addr 127.0.0.1:7200 get -level=stale greeting   # GETA: immediate
//	kvctl -addr 127.0.0.1:7200 get -level=stale -maxage=100ms greeting
//
// Operations:
//
//	kvctl -addr 127.0.0.1:7200 members        # per-group member sets
//	kvctl -addr 127.0.0.1:7200 epoch          # per-group epochs
//	kvctl -addr 127.0.0.1:7200 status         # full per-group snapshot
//	kvctl -addr 127.0.0.1:7200 reconf 0,1,2   # reconfigure all groups
//	kvctl -addr 127.0.0.1:7200 routes         # routing table snapshot
//	kvctl -addr 127.0.0.1:7200 split g0 g2    # live-split group g0 into g2
//	kvctl -addr 127.0.0.1:7200 heal           # roll forward a stalled split
//
// reconf accepts replica IDs separated by commas or spaces, bare or
// r-prefixed ("reconf 0 1 2", "reconf r0,r1,r2"). It drives every
// group hosted by the addressed replica to the new configuration and
// prints the resulting member set and per-group epochs.
//
// With -rpc, kvctl speaks the binary front door (the kvserver -rpc
// port) through the client package instead of the line protocol; -addr
// then takes one or more comma-separated replica RPC addresses and the
// client fails over between them. The line protocol remains the
// default.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"clockrsm/client"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7200", "kvserver client address (with -rpc: comma-separated RPC addresses)")
	timeout := flag.Duration("timeout", 30*time.Second, "request timeout")
	useRPC := flag.Bool("rpc", false, "use the binary front door (kvserver -rpc port) via the client package")
	flag.Parse()

	run := runLine
	if *useRPC {
		run = runRPC
	}
	if err := run(*addr, *timeout, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "kvctl:", err)
		os.Exit(1)
	}
}

// getSpec is a parsed `get` invocation, shared by the line and RPC
// paths.
type getSpec struct {
	key    string
	level  string // "", "lin", "seq" or "stale"
	maxAge string // duration text; only with level "stale"
}

// parseGet parses `get [-level=...] [-maxage=...] <key>`.
func parseGet(args []string) (getSpec, error) {
	var g getSpec
	var keys []string
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "-level="):
			g.level = strings.TrimPrefix(a, "-level=")
		case strings.HasPrefix(a, "-maxage="):
			g.maxAge = strings.TrimPrefix(a, "-maxage=")
		default:
			keys = append(keys, a)
		}
	}
	if len(keys) != 1 {
		return g, fmt.Errorf("usage: kvctl get [-level=lin|seq|stale] [-maxage=<dur>] <key>")
	}
	g.key = keys[0]
	if g.maxAge != "" && g.level != "stale" {
		return g, fmt.Errorf("-maxage applies only to -level=stale (the other levels have no staleness bound)")
	}
	switch g.level {
	case "", "lin", "seq", "stale":
		return g, nil
	default:
		return g, fmt.Errorf("unknown read level %q (want lin, seq or stale)", g.level)
	}
}

// buildLine translates a kvctl invocation into one protocol line.
func buildLine(args []string) (string, error) {
	usage := fmt.Errorf("usage: kvctl [flags] put|get|del <key> [value] | members|epoch|status|routes|heal | reconf <id,id,...> | split <src> <dst>")
	if len(args) == 0 {
		return "", usage
	}
	switch strings.ToLower(args[0]) {
	case "put":
		if len(args) < 3 {
			return "", fmt.Errorf("usage: kvctl put <key> <value>")
		}
		return "PUT " + args[1] + " " + strings.Join(args[2:], " "), nil
	case "get":
		g, err := parseGet(args[1:])
		if err != nil {
			return "", err
		}
		switch g.level {
		case "":
			return "GET " + g.key, nil
		case "lin":
			return "GETL " + g.key, nil
		case "seq":
			return "GETS " + g.key, nil
		default: // stale
			if g.maxAge != "" {
				return "GETA " + g.key + " " + g.maxAge, nil
			}
			return "GETA " + g.key, nil
		}
	case "del":
		if len(args) != 2 {
			return "", fmt.Errorf("usage: kvctl del <key>")
		}
		return "DEL " + args[1], nil
	case "members", "epoch", "status", "routes", "heal":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: kvctl %s", strings.ToLower(args[0]))
		}
		return strings.ToUpper(args[0]), nil
	case "split":
		if len(args) != 3 {
			return "", fmt.Errorf("usage: kvctl split <src-group> <dst-group>")
		}
		return "SPLIT " + args[1] + " " + args[2], nil
	case "reconf":
		if len(args) < 2 {
			return "", fmt.Errorf("usage: kvctl reconf <id,id,...>")
		}
		var ids []string
		for _, arg := range args[1:] {
			for _, tok := range strings.Split(arg, ",") {
				if tok = strings.TrimSpace(tok); tok != "" {
					ids = append(ids, tok)
				}
			}
		}
		if len(ids) == 0 {
			return "", fmt.Errorf("usage: kvctl reconf <id,id,...>")
		}
		return "RECONF " + strings.Join(ids, ","), nil
	default:
		return "", usage
	}
}

// dialLine opens a line-protocol connection with the whole-request
// deadline applied — the one place dial/timeout handling lives.
func dialLine(addr string, timeout time.Duration) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// runLine performs one request over the legacy line protocol.
func runLine(addr string, timeout time.Duration, args []string) error {
	line, err := buildLine(args)
	if err != nil {
		return err
	}
	conn, err := dialLine(addr, timeout)
	if err != nil {
		return err
	}
	defer conn.Close()

	if _, err := fmt.Fprintln(conn, line); err != nil {
		return err
	}
	resp, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return fmt.Errorf("read reply: %w", err)
	}
	fmt.Print(resp)
	if strings.HasPrefix(resp, "ERR") {
		return fmt.Errorf("server error")
	}
	return nil
}

// runRPC performs one request over the binary front door via the
// client package: data verbs map to client methods, operator verbs
// travel as admin lines. -addr may list several replicas; the client
// fails over between them.
func runRPC(addr string, timeout time.Duration, args []string) error {
	// Validate the invocation before dialing so usage errors don't wait
	// on an unreachable server.
	line, err := buildLine(args)
	if err != nil {
		return err
	}
	c, err := client.Dial(client.Config{
		Addrs:       strings.Split(addr, ","),
		DialTimeout: timeout,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	printVal := func(v []byte, err error) error {
		if err != nil {
			return err
		}
		if v == nil {
			fmt.Println("OK (nil)")
		} else {
			fmt.Printf("OK %s\n", v)
		}
		return nil
	}
	switch strings.ToLower(args[0]) {
	case "put":
		v, err := c.Put(ctx, args[1], []byte(strings.Join(args[2:], " ")))
		return printVal(v, err)
	case "del":
		v, err := c.Del(ctx, args[1])
		return printVal(v, err)
	case "get":
		g, err := parseGet(args[1:])
		if err != nil {
			return err
		}
		switch g.level {
		case "":
			v, err := c.Get(ctx, g.key)
			return printVal(v, err)
		case "lin":
			v, err := c.GetLin(ctx, g.key)
			return printVal(v, err)
		case "seq":
			v, err := c.GetSeq(ctx, g.key)
			return printVal(v, err)
		default: // stale
			var maxAge time.Duration
			if g.maxAge != "" {
				if maxAge, err = time.ParseDuration(g.maxAge); err != nil {
					return fmt.Errorf("bad -maxage %q: %v", g.maxAge, err)
				}
			}
			v, err := c.GetStale(ctx, g.key, maxAge)
			return printVal(v, err)
		}
	default:
		// Operator verbs share buildLine's syntax and the server's admin
		// handler; the line just travels inside a VAdmin frame.
		reply, err := c.Admin(ctx, line)
		if err != nil {
			return err
		}
		fmt.Println(reply)
		if strings.HasPrefix(reply, "ERR") {
			return fmt.Errorf("server error")
		}
		return nil
	}
}
