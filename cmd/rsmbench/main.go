// Command rsmbench regenerates every table and figure of the paper's
// evaluation (Section VI). Each experiment prints the same rows or
// series the paper reports; see EXPERIMENTS.md for the paper-vs-measured
// comparison.
//
// Usage:
//
//	rsmbench -exp all            # everything, test-scale parameters
//	rsmbench -exp fig1 -full     # Figure 1 with the paper's parameters
//	rsmbench -exp table4         # numerical Table IV (fast, analytic)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"clockrsm/internal/analysis"
	"clockrsm/internal/runner"
	"clockrsm/internal/stats"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table2|table3|fig1|fig2|fig3|fig4|fig5|fig6|fig7|table4|fig8|all")
	full := flag.Bool("full", false, "use the paper's full-scale parameters (slower)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	if err := run(*exp, *full, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "rsmbench:", err)
		os.Exit(1)
	}
}

// opts scales simulated experiments.
func opts(full bool, seed int64) runner.FigureOptions {
	if full {
		return runner.FigureOptions{
			ClientsPerReplica: 40,
			Duration:          60 * time.Second,
			Seed:              seed,
			Jitter:            time.Millisecond,
		}
	}
	return runner.FigureOptions{
		ClientsPerReplica: 10,
		Duration:          10 * time.Second,
		Seed:              seed,
		Jitter:            500 * time.Microsecond,
	}
}

func run(exp string, full bool, seed int64) error {
	o := opts(full, seed)
	experiments := map[string]func() error{
		"table2": table2,
		"table3": table3,
		"fig1":   func() error { return figure1(o) },
		"fig2":   func() error { return figure2(o) },
		"fig3": func() error {
			return cdfFigure("Figure 3: latency CDF at JP (5 replicas, leader CA, balanced)", func() ([]runner.CDFSeries, error) { return runner.Figure3(o) })
		},
		"fig4": func() error {
			return cdfFigure("Figure 4: latency CDF at CA (3 replicas, leader VA, balanced)", func() ([]runner.CDFSeries, error) { return runner.Figure4(o) })
		},
		"fig5": func() error { return figure5(o) },
		"fig6": func() error {
			return cdfFigure("Figure 6: latency CDF at SG (5 replicas, leader CA, imbalanced)", func() ([]runner.CDFSeries, error) { return runner.Figure6(o) })
		},
		"fig7":   figure7,
		"table4": table4,
		"fig8":   func() error { return figure8(full) },
	}
	if exp == "all" {
		for _, name := range []string{"table2", "table3", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "table4", "fig8"} {
			if err := experiments[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	f, ok := experiments[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return f()
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func msf(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond))
}

// table2 prints the analytic latency formulas evaluated on the paper's
// five-replica placement.
func table2() error {
	header("Table II: analytic commit latency (ms) on {CA,VA,IR,JP,SG}")
	sites := runner.FiveSites()
	m := wan.EC2Matrix(sites)
	leader := analysis.BestPaxosLeader(m)
	fmt.Printf("%-8s %12s %12s %14s %14s %14s\n", "replica", "Paxos", "Paxos-bcast", "Mencius-imbal", "Clock-imbal", "Clock-balanced")
	for i, s := range sites {
		id := types.ReplicaID(i)
		mark := "  "
		if id == leader {
			mark = "L "
		}
		fmt.Printf("%s%-6v %12s %12s %14s %14s %14s\n", mark, s,
			msf(analysis.Paxos(m, id, leader)),
			msf(analysis.PaxosBcast(m, id, leader)),
			msf(analysis.MenciusBcastImbalanced(m, id)),
			msf(analysis.ClockRSMImbalanced(m, id)),
			msf(analysis.ClockRSMBalanced(m, id)))
	}
	return nil
}

// table3 prints the embedded EC2 RTT dataset.
func table3() error {
	header("Table III: average round-trip latencies (ms) between EC2 data centers")
	sites := wan.AllSites()
	fmt.Printf("%4s", "")
	for _, b := range sites[1:] {
		fmt.Printf("%6v", b)
	}
	fmt.Println()
	for i, a := range sites[:len(sites)-1] {
		fmt.Printf("%4v", a)
		for range sites[1 : i+1] {
			fmt.Printf("%6s", "-")
		}
		for _, b := range sites[i+1:] {
			fmt.Printf("%6d", wan.EC2RTT(a, b)/time.Millisecond)
		}
		fmt.Println()
	}
	return nil
}

// printBars renders one bar-figure: rows per replica, columns per
// protocol, mean and 95th percentile.
func printBars(sites []wan.Site, bars []runner.Bar) {
	fmt.Printf("%-8s", "replica")
	for _, p := range runner.AllProtocols() {
		fmt.Printf("%26s", string(p)+" mean/p95")
	}
	fmt.Println()
	for _, site := range sites {
		fmt.Printf("%-8v", site)
		for _, p := range runner.AllProtocols() {
			var cell string
			for _, b := range bars {
				if b.Site == site && b.Protocol == p {
					cell = msf(b.Mean) + " / " + msf(b.P95)
				}
			}
			fmt.Printf("%26s", cell)
		}
		fmt.Println()
	}
}

func figure1(o runner.FigureOptions) error {
	for _, leader := range []wan.Site{wan.CA, wan.VA} {
		header(fmt.Sprintf("Figure 1(%s): 5 replicas, balanced, leader at %v (ms)",
			map[wan.Site]string{wan.CA: "a", wan.VA: "b"}[leader], leader))
		bars, err := runner.Figure1(leader, o)
		if err != nil {
			return err
		}
		printBars(runner.FiveSites(), bars)
	}
	return nil
}

func figure2(o runner.FigureOptions) error {
	for _, leader := range []wan.Site{wan.CA, wan.VA} {
		header(fmt.Sprintf("Figure 2(%s): 3 replicas, balanced, leader at %v (ms)",
			map[wan.Site]string{wan.CA: "a", wan.VA: "b"}[leader], leader))
		bars, err := runner.Figure2(leader, o)
		if err != nil {
			return err
		}
		printBars(runner.ThreeSites(), bars)
	}
	return nil
}

func figure5(o runner.FigureOptions) error {
	header("Figure 5: 5 replicas, imbalanced (one serving replica per run), leader CA (ms)")
	bars, err := runner.Figure5(o)
	if err != nil {
		return err
	}
	printBars(runner.FiveSites(), bars)
	return nil
}

// cdfFigure prints latency distribution series at decile resolution.
func cdfFigure(title string, gen func() ([]runner.CDFSeries, error)) error {
	header(title)
	series, err := gen()
	if err != nil {
		return err
	}
	fmt.Printf("%-14s", "protocol")
	for _, q := range []int{10, 25, 50, 75, 90, 95, 99} {
		fmt.Printf("%9s", fmt.Sprintf("p%d", q))
	}
	fmt.Println()
	for _, s := range series {
		fmt.Printf("%-14s", s.Protocol)
		for _, q := range []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99} {
			fmt.Printf("%9s", msf(quantileOf(s.Points, q)))
		}
		fmt.Println()
	}
	return nil
}

// quantileOf reads a quantile off a CDF series.
func quantileOf(points []stats.CDFPoint, q float64) time.Duration {
	for _, p := range points {
		if p.Fraction >= q {
			return p.Latency
		}
	}
	if len(points) > 0 {
		return points[len(points)-1].Latency
	}
	return 0
}

func figure7() error {
	header("Figure 7: average commit latency over all 3/5/7-replica EC2 placements (ms)")
	fmt.Printf("%-10s %8s %18s %18s %18s %18s\n", "replicas", "groups", "Paxos-bcast all", "Clock-RSM all", "Paxos-bcast high", "Clock-RSM high")
	for _, r := range analysis.Figure7() {
		fmt.Printf("%-10d %8d %18s %18s %18s %18s\n", r.Replicas, r.Groups,
			msf(r.PaxosAll), msf(r.ClockAll), msf(r.PaxosHighest), msf(r.ClockHighest))
	}
	return nil
}

func table4() error {
	header("Table IV: latency reduction of Clock-RSM over Paxos-bcast")
	fmt.Printf("%-10s %12s %12s %12s\n", "replicas", "percentage", "abs (ms)", "rel (%)")
	t := analysis.Table4()
	for _, n := range []int{3, 5, 7} {
		for _, row := range t[n] {
			fmt.Printf("%-10d %11.1f%% %12s %11.1f%%\n",
				n, row.Percentage, msf(row.AbsoluteReduction), row.RelativeReduction)
		}
	}
	return nil
}

func figure8(full bool) error {
	header("Figure 8: throughput, 5 replicas, local cluster (kop/s)")
	perRun := 500 * time.Millisecond
	if full {
		perRun = 3 * time.Second
	}
	results, err := runner.Figure8(nil, perRun)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s", "protocol")
	for _, size := range []int{10, 100, 1000} {
		fmt.Printf("%10s", fmt.Sprintf("%dB", size))
	}
	fmt.Println()
	for _, p := range runner.AllProtocols() {
		fmt.Printf("%-14s", p)
		for _, size := range []int{10, 100, 1000} {
			for _, r := range results {
				if r.Protocol == p && r.PayloadSize == size {
					fmt.Printf("%10.1f", r.OpsPerSec/1000)
				}
			}
		}
		fmt.Println()
	}
	return nil
}
