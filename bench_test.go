// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section VI). Latency figures run on the discrete-event
// simulator with reduced (but shape-preserving) workload parameters;
// Figure 8 runs in real time on the in-process runtime. Reported custom
// metrics are milliseconds of commit latency (figures 1–7) or operations
// per second (figure 8), so `go test -bench=.` prints the reproduction
// headline numbers alongside the usual ns/op.
package clockrsm_test

import (
	"testing"
	"time"

	"clockrsm/internal/analysis"
	"clockrsm/internal/runner"
	"clockrsm/internal/types"
	"clockrsm/internal/wan"
)

// benchOpts are reduced-scale workload parameters for the simulated
// latency experiments (the paper: 40 clients/replica, 60 s).
func benchOpts() runner.FigureOptions {
	return runner.FigureOptions{
		ClientsPerReplica: 10,
		Duration:          5 * time.Second,
		Seed:              1,
		Jitter:            500 * time.Microsecond,
	}
}

// reportProtocolMeans attaches each protocol's replica-averaged mean
// latency as a benchmark metric.
func reportProtocolMeans(b *testing.B, bars []runner.Bar) {
	b.Helper()
	sums := make(map[runner.Protocol]float64)
	counts := make(map[runner.Protocol]float64)
	for _, bar := range bars {
		sums[bar.Protocol] += float64(bar.Mean) / float64(time.Millisecond)
		counts[bar.Protocol]++
	}
	for p, sum := range sums {
		b.ReportMetric(sum/counts[p], "ms-mean/"+string(p))
	}
}

// BenchmarkTable2 evaluates the analytic latency formulas of Table II
// on the five-replica placement.
func BenchmarkTable2(b *testing.B) {
	m := wan.EC2Matrix(runner.FiveSites())
	var sink time.Duration
	for i := 0; i < b.N; i++ {
		for r := 0; r < 5; r++ {
			id := types.ReplicaID(r)
			sink += analysis.ClockRSMBalanced(m, id)
			sink += analysis.Paxos(m, id, 1)
			sink += analysis.PaxosBcast(m, id, 1)
			sink += analysis.MenciusBcastImbalanced(m, id)
		}
	}
	_ = sink
	b.ReportMetric(float64(analysis.ClockRSMBalanced(m, 0))/float64(time.Millisecond), "ms-clockrsm-CA")
}

// BenchmarkTable3 builds the EC2 latency matrix of Table III.
func BenchmarkTable3(b *testing.B) {
	var sink time.Duration
	for i := 0; i < b.N; i++ {
		m := wan.EC2Matrix(wan.AllSites())
		sink += m.Max(0)
	}
	_ = sink
}

// BenchmarkFigure1LeaderCA regenerates Figure 1(a): five replicas,
// balanced workload, Paxos leader at CA.
func BenchmarkFigure1LeaderCA(b *testing.B) {
	var bars []runner.Bar
	for i := 0; i < b.N; i++ {
		var err error
		bars, err = runner.Figure1(wan.CA, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportProtocolMeans(b, bars)
}

// BenchmarkFigure1LeaderVA regenerates Figure 1(b).
func BenchmarkFigure1LeaderVA(b *testing.B) {
	var bars []runner.Bar
	for i := 0; i < b.N; i++ {
		var err error
		bars, err = runner.Figure1(wan.VA, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportProtocolMeans(b, bars)
}

// BenchmarkFigure2LeaderCA regenerates Figure 2(a): three replicas,
// balanced workload, leader at CA.
func BenchmarkFigure2LeaderCA(b *testing.B) {
	var bars []runner.Bar
	for i := 0; i < b.N; i++ {
		var err error
		bars, err = runner.Figure2(wan.CA, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportProtocolMeans(b, bars)
}

// BenchmarkFigure2LeaderVA regenerates Figure 2(b).
func BenchmarkFigure2LeaderVA(b *testing.B) {
	var bars []runner.Bar
	for i := 0; i < b.N; i++ {
		var err error
		bars, err = runner.Figure2(wan.VA, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportProtocolMeans(b, bars)
}

// reportCDF attaches each protocol's median from a CDF figure.
func reportCDF(b *testing.B, series []runner.CDFSeries) {
	b.Helper()
	for _, s := range series {
		if len(s.Points) == 0 {
			continue
		}
		med := s.Points[len(s.Points)/2].Latency
		b.ReportMetric(float64(med)/float64(time.Millisecond), "ms-median/"+string(s.Protocol))
	}
}

// BenchmarkFigure3 regenerates Figure 3: the latency CDF at JP with
// five replicas, leader CA, balanced workload.
func BenchmarkFigure3(b *testing.B) {
	var series []runner.CDFSeries
	for i := 0; i < b.N; i++ {
		var err error
		series, err = runner.Figure3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCDF(b, series)
}

// BenchmarkFigure4 regenerates Figure 4: the latency CDF at CA with
// three replicas, leader VA.
func BenchmarkFigure4(b *testing.B) {
	var series []runner.CDFSeries
	for i := 0; i < b.N; i++ {
		var err error
		series, err = runner.Figure4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCDF(b, series)
}

// BenchmarkFigure5 regenerates Figure 5: imbalanced workloads at five
// replicas (one serving replica per run), leader CA.
func BenchmarkFigure5(b *testing.B) {
	opts := benchOpts()
	opts.Duration = 3 * time.Second // five runs per protocol inside
	var bars []runner.Bar
	for i := 0; i < b.N; i++ {
		var err error
		bars, err = runner.Figure5(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportProtocolMeans(b, bars)
}

// BenchmarkFigure6 regenerates Figure 6: the latency CDF at SG under
// the imbalanced workload.
func BenchmarkFigure6(b *testing.B) {
	var series []runner.CDFSeries
	for i := 0; i < b.N; i++ {
		var err error
		series, err = runner.Figure6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCDF(b, series)
}

// BenchmarkFigure7 regenerates the numerical all-placements comparison
// of Figure 7 (pure analytic model).
func BenchmarkFigure7(b *testing.B) {
	var rows []analysis.Figure7Row
	for i := 0; i < b.N; i++ {
		rows = analysis.Figure7()
	}
	for _, r := range rows {
		if r.Replicas == 5 {
			b.ReportMetric(float64(r.ClockAll)/float64(time.Millisecond), "ms-clockrsm-all-5")
			b.ReportMetric(float64(r.PaxosAll)/float64(time.Millisecond), "ms-paxosbcast-all-5")
		}
	}
}

// BenchmarkTable4 regenerates Table IV (pure analytic model).
func BenchmarkTable4(b *testing.B) {
	var table map[int][2]analysis.Table4Row
	for i := 0; i < b.N; i++ {
		table = analysis.Table4()
	}
	b.ReportMetric(table[5][0].Percentage, "pct-lower-5replicas")
	b.ReportMetric(table[5][0].RelativeReduction, "pct-reduction-5replicas")
}

// benchThroughput runs one Figure 8 cell in real time.
func benchThroughput(b *testing.B, p runner.Protocol, size int) {
	b.Helper()
	var ops float64
	for i := 0; i < b.N; i++ {
		res, err := runner.RunThroughput(runner.ThroughputConfig{
			Protocol:    p,
			PayloadSize: size,
			Warmup:      100 * time.Millisecond,
			Duration:    400 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		ops = res.OpsPerSec
	}
	b.ReportMetric(ops, "ops/s")
}

// BenchmarkFigure8 regenerates Figure 8: throughput per protocol and
// command size on a local five-replica cluster.
func BenchmarkFigure8(b *testing.B) {
	for _, size := range []int{10, 100, 1000} {
		for _, p := range runner.AllProtocols() {
			name := string(p) + "/" + sizeName(size)
			b.Run(name, func(b *testing.B) { benchThroughput(b, p, size) })
		}
	}
}

func sizeName(size int) string {
	switch size {
	case 10:
		return "10B"
	case 100:
		return "100B"
	default:
		return "1000B"
	}
}
